#include "core/zht_client.h"

#include <algorithm>
#include <random>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/clock.h"
#include "common/log.h"

namespace zht {

Nanos DecorrelatedBackoff(Nanos prev, Nanos base, Nanos cap, Rng& rng) {
  if (base <= 0) return 0;
  if (cap < base) cap = base;
  if (prev < base) return base;  // first retry: start at the base
  const Nanos hi = prev > cap / 3 ? cap : prev * 3;
  if (hi <= base) return base;
  return base + static_cast<Nanos>(
                    rng.Below(static_cast<std::uint64_t>(hi - base) + 1));
}

ZhtClient::ZhtClient(MembershipTable table, const ZhtClientOptions& options,
                     ClientTransport* transport)
    : table_(std::move(table)),
      options_(options),
      transport_(transport),
      detector_(options.failure_detector) {
  static constexpr const char* kDataOpNames[4] = {"insert", "lookup", "remove",
                                                  "append"};
  for (int i = 0; i < 4; ++i) {
    op_hist_[i] = metrics_.GetHistogram(std::string("client.op.") +
                                        kDataOpNames[i] + ".latency_ns");
  }
  batch_hist_ = metrics_.GetHistogram("client.op.batch.latency_ns");
  batch_size_hist_ = metrics_.GetHistogram("client.batch.size");
  retry_counter_ = metrics_.GetCounter("client.retries");
  failover_counter_ = metrics_.GetCounter("client.failovers");
  redirect_counter_ = metrics_.GetCounter("client.redirects_followed");
  membership_pull_counter_ = metrics_.GetCounter("client.membership_pulls");
  if (options.client_id != 0) {
    client_id_ = options.client_id;
  } else {
    std::random_device device;
    client_id_ = (static_cast<std::uint64_t>(device()) << 32) | device();
    if (client_id_ == 0) client_id_ = 1;
  }
  backoff_rng_.Seed(client_id_);
}

void ZhtClient::Backoff(Nanos duration) {
  if (duration > 0 && options_.sleep_on_backoff) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(duration));
  }
}

Status ZhtClient::ApplyMembership(std::string_view update) {
  // Addresses alive before the update: any address that is alive AFTER but
  // was not alive before (a rejoined instance, or a fresh join at a reused
  // endpoint) must shed its detector state — stale consecutive-failure
  // counts from the previous incarnation would otherwise suppress or slow
  // traffic to a healthy node.
  std::unordered_set<NodeAddress> alive_before;
  for (const auto& info : table_.instances()) {
    if (info.alive) alive_before.insert(info.address);
  }
  Status applied = table_.ApplyUpdate(update);
  if (applied.ok()) {
    std::unordered_set<NodeAddress> current;
    for (const auto& info : table_.instances()) {
      current.insert(info.address);
      if (info.alive && !alive_before.count(info.address)) {
        detector_.RecordSuccess(info.address);  // drop stale failure marks
      }
    }
    detector_.PruneExcept(current);
  }
  return applied;
}

void ZhtClient::MaybePullMembership(const NodeAddress& from,
                                    std::uint32_t observed_epoch) {
  // Rate limit: one snapshot per membership epoch. During churn every
  // redirected op used to trigger its own full-table pull — a migration
  // became a thundering herd of snapshot fetches at whichever node
  // redirected first.
  if (observed_epoch != 0 && last_pull_epoch_ >= observed_epoch) return;
  if (pull_inflight_) return;
  pull_inflight_ = true;
  ++stats_.membership_pulls;
  membership_pull_counter_->Increment();
  Request pull;
  pull.op = OpCode::kMembershipPull;
  pull.seq = next_seq_++;
  pull.epoch = table_.epoch();
  auto snapshot = transport_->Call(from, pull, options_.cluster.op_timeout);
  if (snapshot.ok() && !snapshot->membership.empty() &&
      ApplyMembership(snapshot->membership).ok()) {
    last_pull_epoch_ =
        std::max({last_pull_epoch_, table_.epoch(), observed_epoch});
  }
  pull_inflight_ = false;
}

void ZhtClient::ReportFailure(InstanceId instance) {
  ++stats_.nodes_reported_dead;
  table_.MarkDead(instance);
  if (!options_.manager) return;
  // Inform a manager (§III.C): it rebroadcasts membership and triggers
  // replica rebuilding. Best effort.
  Request report;
  report.op = OpCode::kDepartRequest;
  report.seq = next_seq_++;
  report.key = std::to_string(instance);
  report.value = "failed";
  report.epoch = table_.epoch();
  auto result =
      transport_->Call(*options_.manager, report, options_.cluster.op_timeout);
  if (!result.ok()) {
    ZHT_WARN << "failure report to manager failed: "
             << result.status().ToString();
  }
}

Result<Response> ZhtClient::Execute(OpCode op, std::string_view key,
                                    std::string_view value) {
  const Stopwatch watch(SystemClock::Instance());
  auto result = ExecuteInternal(op, key, value);
  const auto op_index = static_cast<std::size_t>(op) - 1;
  if (op_index < 4) op_hist_[op_index]->Record(watch.Elapsed());
  return result;
}

Result<Response> ZhtClient::ExecuteInternal(OpCode op, std::string_view key,
                                            std::string_view value) {
  ++stats_.ops;
  int replica_try = 0;
  // Tracks the most recent transport-level failure so exhaustion can
  // distinguish a slow cluster (kTimeout) from a dead one (kUnavailable).
  StatusCode last_transport = StatusCode::kTimeout;
  // One sequence number per logical operation: retries and transport
  // retransmissions carry the same (client_id, seq), so the server's
  // dedup window makes append at-most-once.
  const std::uint64_t op_seq = next_seq_++;
  Nanos migrating_wait = 0;  // grows per kMigrating retry of this op
  Nanos shed_wait = 0;       // grows per admission-control shed of this op
  // Three independent retry pools (see ZhtClientOptions::max_attempts):
  // `attempt` covers transport failures, failovers, and redirects;
  // migrating retries and shed backoffs each draw from their own budget so
  // a shed+migrating overlap under churn cannot exhaust the op spuriously.
  int attempt = 0;
  int migrating_retries = 0;
  int shed_retries = 0;

  while (attempt < options_.max_attempts) {
    PartitionId partition = table_.PartitionOfKey(key);
    auto chain = table_.ReplicaChain(partition, options_.cluster.num_replicas);
    if (chain.empty()) {
      return Status(StatusCode::kUnavailable, "no alive instance for key");
    }
    if (replica_try >= static_cast<int>(chain.size())) {
      if (op == OpCode::kLookup) {
        // Read-only and side-effect free: as long as some chain member is
        // still believed alive, wrap around and walk the chain again (the
        // attempt budget bounds this) instead of reporting the partition
        // unavailable — a transient failure burst should not blind reads.
        bool any_alive = false;
        for (InstanceId member : chain) {
          if (table_.Instance(member).alive) {
            any_alive = true;
            break;
          }
        }
        if (any_alive) {
          replica_try = 0;
          ++attempt;
          continue;
        }
      }
      return Status(StatusCode::kUnavailable,
                    "all replicas of partition " + std::to_string(partition) +
                        " unreachable");
    }
    InstanceId target = chain[static_cast<std::size_t>(replica_try)];
    if (!table_.Instance(target).alive) {
      // Known-dead (locally marked) node still heads the chain until a
      // membership update reassigns ownership; skip without a network hop.
      ++replica_try;
      continue;
    }
    const NodeAddress& address = table_.Instance(target).address;

    Request request;
    request.op = op;
    request.seq = op_seq;
    request.key.assign(key);
    request.value.assign(value);
    request.epoch = table_.epoch();
    request.replica_index = static_cast<std::uint8_t>(replica_try);
    request.client_id = client_id_;

    auto result =
        transport_->Call(address, request, options_.cluster.op_timeout);

    if (!result.ok()) {
      // Transport failure: exponential back-off, then either retry the
      // same node or fail over to the next replica once the detector
      // declares it dead. Reads falling back this way land on the sync
      // secondary, which holds every acked mutation (the secondary leg
      // completes before the primary acks), so failover lookups stay
      // consistent while the owner is down or its partitions rebuild.
      last_transport = result.status().code();
      ++stats_.retries;
      retry_counter_->Increment();
      Backoff(detector_.BackoffFor(address));
      if (detector_.RecordFailure(address)) {
        ReportFailure(target);
        transport_->Invalidate(address);
        ++stats_.failovers;
        failover_counter_->Increment();
        ++replica_try;
      }
      ++attempt;
      continue;
    }
    detector_.RecordSuccess(address);

    StatusCode code = static_cast<StatusCode>(result->status);
    if (code == StatusCode::kRedirect) {
      ++stats_.redirects_followed;
      redirect_counter_->Increment();
      bool applied = false;
      if (!result->membership.empty()) {
        applied = ApplyMembership(result->membership).ok();
      }
      if (!applied) {
        // Delta missing or did not apply (e.g. we were too far behind):
        // pull a snapshot from the node that redirected us — coalesced to
        // one pull per epoch across the whole redirect storm.
        MaybePullMembership(address, result->epoch);
      }
      replica_try = 0;
      ++attempt;
      continue;
    }
    if (code == StatusCode::kMigrating) {
      if (++migrating_retries >= options_.max_attempts) {
        return Status(StatusCode::kTimeout,
                      "partition " + std::to_string(partition) +
                          " stuck migrating");
      }
      ++stats_.retries;
      retry_counter_->Increment();
      // Jittered growth desynchronizes the herd stuck behind one
      // migration; the fixed base is kept when sleeps are disabled so
      // simulated-time tests stay deterministic (no RNG draw).
      migrating_wait =
          options_.sleep_on_backoff
              ? DecorrelatedBackoff(migrating_wait, options_.migrating_backoff,
                                    options_.migrating_backoff_cap,
                                    backoff_rng_)
              : options_.migrating_backoff;
      Backoff(migrating_wait);
      continue;
    }
    if (code == StatusCode::kUnavailable && result->retry_after_us > 0 &&
        shed_retries + 1 < options_.max_attempts) {
      // The server shed this op under admission control and told us how
      // long to stay away; honor the hint through the same decorrelated
      // jitter as migration waits so a shed flash crowd spreads out
      // instead of re-arriving as a synchronized wave. The final shed
      // retry falls through and surfaces the kUnavailable to the caller.
      ++shed_retries;
      ++stats_.retries;
      ++stats_.shed_backoffs;
      retry_counter_->Increment();
      const Nanos hint = static_cast<Nanos>(result->retry_after_us) * 1000;
      shed_wait = options_.sleep_on_backoff
                      ? DecorrelatedBackoff(
                            shed_wait, hint,
                            std::max(hint, options_.migrating_backoff_cap),
                            backoff_rng_)
                      : hint;
      Backoff(shed_wait);
      continue;
    }
    return *result;
  }
  if (last_transport == StatusCode::kNetwork) {
    return Status(StatusCode::kUnavailable, "node unreachable");
  }
  return Status(StatusCode::kTimeout, "attempts exhausted");
}

std::vector<Result<Response>> ZhtClient::ExecuteBatch(
    OpCode op, std::span<const std::string> keys,
    std::span<const std::string> values) {
  const Stopwatch watch(SystemClock::Instance());
  const std::size_t n = keys.size();
  stats_.ops += n;
  batch_size_hist_->Record(static_cast<std::int64_t>(n));
  std::vector<Result<Response>> results(
      n, Result<Response>(Status(StatusCode::kTimeout, "attempts exhausted")));
  if (n == 0) return results;

  // One sequence number per sub-operation, fixed across retries and
  // retransmitted carriers: the server dedups appends on (client_id, seq).
  std::vector<std::uint64_t> seqs(n);
  for (auto& seq : seqs) seq = next_seq_++;

  std::vector<int> replica_try(n, 0);
  std::vector<StatusCode> last_transport(n, StatusCode::kTimeout);
  Nanos migrating_wait = 0;  // grows per round that saw kMigrating
  Nanos shed_wait = 0;       // grows per round that saw a shed
  std::vector<std::size_t> pending(n);
  for (std::size_t i = 0; i < n; ++i) pending[i] = i;

  // Mirror of ExecuteInternal's separated retry pools, per round: rounds
  // that saw a transport failure or redirect consume the hard budget;
  // rounds that only waited out a migration or a shed draw from their own
  // pools, so overlapping stalls cannot exhaust the batch spuriously.
  int hard_rounds = 0;
  int migrating_rounds = 0;
  int shed_rounds = 0;

  while (!pending.empty() && hard_rounds < options_.max_attempts &&
         migrating_rounds < options_.max_attempts &&
         shed_rounds < options_.max_attempts) {
    // Shard the still-pending keys by target instance: the primary for
    // most, further down the chain for sub-ops already failing over.
    std::unordered_map<InstanceId, std::vector<std::size_t>> shards;
    std::vector<std::size_t> still_pending;
    for (std::size_t i : pending) {
      PartitionId partition = table_.PartitionOfKey(keys[i]);
      auto chain =
          table_.ReplicaChain(partition, options_.cluster.num_replicas);
      if (chain.empty()) {
        results[i] =
            Status(StatusCode::kUnavailable, "no alive instance for key");
        continue;
      }
      bool placed = false;
      for (int pass = 0; pass < 2 && !placed; ++pass) {
        while (replica_try[i] < static_cast<int>(chain.size())) {
          InstanceId target = chain[static_cast<std::size_t>(replica_try[i])];
          if (!table_.Instance(target).alive) {
            ++replica_try[i];  // locally known dead: skip without a hop
            continue;
          }
          shards[target].push_back(i);
          placed = true;
          break;
        }
        // Read-only sub-ops wrap and re-walk the chain (mirroring
        // ExecuteInternal) as long as some member is still believed
        // alive; the attempt budget bounds the re-walks.
        if (!placed && op == OpCode::kLookup) replica_try[i] = 0;
      }
      if (!placed) {
        results[i] = Status(StatusCode::kUnavailable,
                            "all replicas of partition " +
                                std::to_string(partition) + " unreachable");
      }
    }

    bool hard_seen = false;  // transport failure or redirect this round
    bool migrating_seen = false;
    Nanos shed_hint = 0;  // largest retry-after seen this round (0 = none)
    for (auto& [target, indices] : shards) {
      const NodeAddress address = table_.Instance(target).address;
      std::vector<Request> batch;
      batch.reserve(indices.size());
      for (std::size_t i : indices) {
        Request request;
        request.op = op;
        request.seq = seqs[i];
        request.key = keys[i];
        if (!values.empty()) request.value = values[i];
        request.epoch = table_.epoch();
        request.replica_index = static_cast<std::uint8_t>(replica_try[i]);
        request.client_id = client_id_;
        batch.push_back(std::move(request));
      }

      auto replies =
          transport_->CallBatch(address, batch, options_.cluster.op_timeout);
      if (!replies.ok()) {
        // The shard shared one network exchange: back off once, and fail
        // the whole shard over together when the detector declares death.
        ++stats_.retries;
        retry_counter_->Increment();
        hard_seen = true;
        Backoff(detector_.BackoffFor(address));
        const bool dead = detector_.RecordFailure(address);
        if (dead) {
          ReportFailure(target);
          transport_->Invalidate(address);
          ++stats_.failovers;
          failover_counter_->Increment();
        }
        for (std::size_t i : indices) {
          last_transport[i] = replies.status().code();
          if (dead) ++replica_try[i];
          still_pending.push_back(i);
        }
        continue;
      }
      detector_.RecordSuccess(address);

      bool membership_applied = false;
      for (std::size_t j = 0; j < indices.size(); ++j) {
        const std::size_t i = indices[j];
        Response& sub = (*replies)[j];
        const StatusCode code = static_cast<StatusCode>(sub.status);
        if (code == StatusCode::kRedirect) {
          // Partition moved mid-batch: apply the piggybacked delta once
          // (the server attaches it to the first redirected sub-op) and
          // re-shard the key next round.
          ++stats_.redirects_followed;
          redirect_counter_->Increment();
          hard_seen = true;
          if (!membership_applied) {
            membership_applied = true;
            bool applied = !sub.membership.empty() &&
                           ApplyMembership(sub.membership).ok();
            if (!applied) {
              // One coalesced snapshot pull per epoch for the whole
              // redirect storm (see MaybePullMembership).
              MaybePullMembership(address, sub.epoch);
            }
          }
          replica_try[i] = 0;
          last_transport[i] = StatusCode::kTimeout;
          still_pending.push_back(i);
          continue;
        }
        if (code == StatusCode::kMigrating) {
          ++stats_.retries;
          retry_counter_->Increment();
          migrating_seen = true;
          last_transport[i] = StatusCode::kTimeout;
          still_pending.push_back(i);
          continue;
        }
        if (code == StatusCode::kUnavailable && sub.retry_after_us > 0 &&
            shed_rounds + 1 < options_.max_attempts) {
          // Shed under admission control: the sub-op retries next round
          // after the hinted pause (the round waits for the largest hint
          // seen). On the final shed round the shed response stands.
          ++stats_.retries;
          ++stats_.shed_backoffs;
          retry_counter_->Increment();
          shed_hint = std::max(
              shed_hint, static_cast<Nanos>(sub.retry_after_us) * 1000);
          last_transport[i] = StatusCode::kTimeout;
          still_pending.push_back(i);
          continue;
        }
        results[i] = std::move(sub);
      }
    }
    if (hard_seen) ++hard_rounds;
    if (migrating_seen) {
      ++migrating_rounds;
      migrating_wait =
          options_.sleep_on_backoff
              ? DecorrelatedBackoff(migrating_wait, options_.migrating_backoff,
                                    options_.migrating_backoff_cap,
                                    backoff_rng_)
              : options_.migrating_backoff;
      Backoff(migrating_wait);
    }
    if (shed_hint > 0) {
      ++shed_rounds;
      shed_wait =
          options_.sleep_on_backoff
              ? DecorrelatedBackoff(
                    shed_wait, shed_hint,
                    std::max(shed_hint, options_.migrating_backoff_cap),
                    backoff_rng_)
              : shed_hint;
      Backoff(shed_wait);
    }
    pending = std::move(still_pending);
  }

  for (std::size_t i : pending) {
    results[i] = last_transport[i] == StatusCode::kNetwork
                     ? Result<Response>(
                           Status(StatusCode::kUnavailable, "node unreachable"))
                     : Result<Response>(Status(StatusCode::kTimeout,
                                               "attempts exhausted"));
  }
  batch_hist_->Record(watch.Elapsed());
  return results;
}

Status ZhtClient::Insert(std::string_view key, std::string_view value) {
  auto result = Execute(OpCode::kInsert, key, value);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Result<std::string> ZhtClient::Lookup(std::string_view key) {
  auto result = Execute(OpCode::kLookup, key, "");
  if (!result.ok()) return result.status();
  if (!result->ok()) return result->status_as_object();
  return std::move(result->value);
}

Status ZhtClient::Remove(std::string_view key) {
  auto result = Execute(OpCode::kRemove, key, "");
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Status ZhtClient::Append(std::string_view key, std::string_view value) {
  auto result = Execute(OpCode::kAppend, key, value);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

namespace {

std::vector<Status> FlattenStatuses(std::vector<Result<Response>> responses) {
  std::vector<Status> out;
  out.reserve(responses.size());
  for (auto& response : responses) {
    out.push_back(response.ok() ? response->status_as_object()
                                : response.status());
  }
  return out;
}

}  // namespace

std::vector<Status> ZhtClient::MultiInsert(std::span<const KeyValue> pairs) {
  std::vector<std::string> keys;
  std::vector<std::string> values;
  keys.reserve(pairs.size());
  values.reserve(pairs.size());
  for (const KeyValue& pair : pairs) {
    keys.push_back(pair.key);
    values.push_back(pair.value);
  }
  return FlattenStatuses(ExecuteBatch(OpCode::kInsert, keys, values));
}

std::vector<Result<std::string>> ZhtClient::MultiLookup(
    std::span<const std::string> keys) {
  auto responses = ExecuteBatch(OpCode::kLookup, keys, {});
  std::vector<Result<std::string>> out;
  out.reserve(responses.size());
  for (auto& response : responses) {
    if (!response.ok()) {
      out.push_back(response.status());
    } else if (!response->ok()) {
      out.push_back(response->status_as_object());
    } else {
      out.push_back(std::move(response->value));
    }
  }
  return out;
}

std::vector<Status> ZhtClient::MultiRemove(std::span<const std::string> keys) {
  return FlattenStatuses(ExecuteBatch(OpCode::kRemove, keys, {}));
}

Status ZhtClient::Ping(InstanceId instance) {
  if (instance >= table_.instance_count()) {
    return Status(StatusCode::kInvalidArgument, "no such instance");
  }
  Request request;
  request.op = OpCode::kPing;
  request.seq = next_seq_++;
  request.epoch = table_.epoch();
  auto result = transport_->Call(table_.Instance(instance).address, request,
                                 options_.cluster.op_timeout);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Status ZhtClient::Broadcast(std::string_view key, std::string_view value) {
  Request request;
  request.op = OpCode::kBroadcast;
  request.seq = next_seq_++;
  request.key.assign(key);
  request.value.assign(value);
  request.epoch = table_.epoch();
  // Root of the spanning tree is instance 0.
  auto result = transport_->Call(table_.Instance(0).address, request,
                                 options_.cluster.op_timeout);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Status ZhtClient::RefreshMembership(std::optional<InstanceId> from) {
  InstanceId source = from.value_or(0);
  if (source >= table_.instance_count()) {
    return Status(StatusCode::kInvalidArgument, "no such instance");
  }
  Request pull;
  pull.op = OpCode::kMembershipPull;
  pull.seq = next_seq_++;
  pull.epoch = table_.epoch();
  ++stats_.membership_pulls;
  membership_pull_counter_->Increment();
  auto result = transport_->Call(table_.Instance(source).address, pull,
                                 options_.cluster.op_timeout);
  if (!result.ok()) return result.status();
  if (result->membership.empty()) {
    return Status(StatusCode::kInternal, "empty membership response");
  }
  Status applied = ApplyMembership(result->membership);
  if (applied.ok()) {
    last_pull_epoch_ = std::max(last_pull_epoch_, table_.epoch());
  }
  return applied;
}

}  // namespace zht
