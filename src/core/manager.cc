#include "core/manager.h"

#include <algorithm>
#include <cstdlib>

#include "common/log.h"

namespace zht {

Manager::Manager(MembershipTable table, const ManagerOptions& options,
                 ClientTransport* transport)
    : options_(options), transport_(transport), table_(std::move(table)) {}

MembershipTable Manager::TableSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_;
}

ManagerStats Manager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status Manager::CommandMigration(const NodeAddress& source,
                                 PartitionId partition,
                                 const NodeAddress& target) {
  Request request;
  request.op = OpCode::kMigrateOut;
  request.seq = next_seq_++;
  request.partition = partition;
  request.value = target.ToString();
  request.server_origin = true;
  auto result =
      transport_->Call(source, request, 2 * options_.cluster.peer_timeout);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

void Manager::PushTableTo(const NodeAddress& address,
                          std::uint32_t since_epoch) {
  Request push;
  push.op = OpCode::kMembershipPush;
  push.server_origin = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    push.seq = next_seq_++;
    push.value = table_.EncodeDelta(since_epoch);
  }
  auto result = transport_->Call(address, push, options_.cluster.peer_timeout);
  if (!result.ok()) {
    ZHT_DEBUG << "membership push to " << address.ToString()
              << " failed: " << result.status().ToString();
  }
}

void Manager::SetPeerManagers(std::vector<NodeAddress> peers) {
  std::lock_guard<std::mutex> lock(mu_);
  peer_managers_ = std::move(peers);
}

void Manager::BroadcastDelta(std::uint32_t since_epoch) {
  std::vector<NodeAddress> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& info : table_.instances()) {
      if (info.alive) targets.push_back(info.address);
    }
    targets.insert(targets.end(), peer_managers_.begin(),
                   peer_managers_.end());
    ++stats_.broadcasts_sent;
  }
  // "the manager broadcasts out the incremental information of membership"
  // (§III.C). Sequential pushes; deltas are tiny.
  for (const auto& address : targets) {
    PushTableTo(address, since_epoch);
  }
}

std::vector<Manager::PlacementMove> Manager::PlanPlacementMoves() {
  std::vector<PlacementMove> moves;
  const std::vector<InstanceId> live = table_.AliveIds();
  if (live.empty()) return moves;
  const PlacementPolicy& policy = GetPlacementPolicy(table_.placement());
  for (PartitionId p = 0; p < table_.num_partitions(); ++p) {
    const InstanceId current = table_.OwnerOf(p);
    const InstanceId desired =
        policy.DesiredOwner(p, table_.num_partitions(), live);
    if (desired == current) continue;
    if (!table_.Instance(current).alive) continue;
    moves.push_back(PlacementMove{p, current, table_.Instance(current).address,
                                  desired, table_.Instance(desired).address});
  }
  return moves;
}

std::vector<std::vector<InstanceId>> Manager::SnapshotChains() const {
  std::vector<std::vector<InstanceId>> chains;
  chains.reserve(table_.num_partitions());
  for (PartitionId p = 0; p < table_.num_partitions(); ++p) {
    chains.push_back(
        table_.ReplicaChain(p, options_.cluster.num_replicas + 1));
  }
  return chains;
}

void Manager::CommandRepairs(const std::vector<PartitionId>& partitions) {
  for (PartitionId p : partitions) {
    NodeAddress owner_address;
    {
      std::lock_guard<std::mutex> lock(mu_);
      InstanceId owner = table_.OwnerOf(p);
      if (!table_.Instance(owner).alive) continue;  // lost partition
      owner_address = table_.Instance(owner).address;
      ++stats_.repairs_commanded;
    }
    Request repair;
    repair.op = OpCode::kRepair;
    repair.seq = next_seq_++;
    repair.partition = p;
    repair.server_origin = true;
    auto result = transport_->Call(owner_address, repair,
                                   2 * options_.cluster.peer_timeout);
    if (!result.ok()) {
      ZHT_WARN << "repair of partition " << p
               << " failed: " << result.status().ToString();
    }
  }
}

Result<InstanceId> Manager::AdmitJoin(const NodeAddress& new_instance,
                                      std::uint32_t physical_node) {
  std::uint32_t epoch_before;
  InstanceId fresh;
  bool rejoin = false;
  std::vector<PlacementMove> moves;
  std::vector<std::vector<InstanceId>> chains_before;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_before = table_.epoch();
    chains_before = SnapshotChains();
    // An instance coming back at a previously registered address re-uses
    // its old id: adding a second entry for the same address would leave
    // two table rows racing for one endpoint (redirects and failure
    // reports against the stale id would misroute its traffic forever).
    if (auto existing = table_.FindByAddress(new_instance)) {
      fresh = *existing;
      rejoin = true;
      if (!table_.Instance(fresh).alive) table_.MarkAlive(fresh);
    } else {
      fresh = table_.AddInstance(new_instance, physical_node);
    }
    // "find the physical node with the most partitions ... and move some
    // of the partitions from the busy node" (§III.C), generalized: the
    // placement policy says where every partition should live with the
    // newcomer in the live set; only the diff migrates.
    moves = PlanPlacementMoves();
  }

  // The joiner learns the current table before anything moves: a revived
  // instance still holding pre-failure state must redirect (not serve
  // stale data) from the first request it sees, and a fresh instance needs
  // the cluster layout to accept migrations.
  PushTableTo(new_instance, 0);

  for (const PlacementMove& move : moves) {
    Status status =
        CommandMigration(move.from_address, move.partition, move.to_address);
    if (!status.ok()) {
      ZHT_WARN << "migration of partition " << move.partition
               << " failed: " << status.ToString();
      continue;  // partition stays put; membership unchanged
    }
    std::uint32_t push_from;
    {
      std::lock_guard<std::mutex> lock(mu_);
      push_from = table_.epoch() > 0 ? table_.epoch() - 1 : 0;
      table_.SetOwner(move.partition, move.to);
      ++stats_.partitions_migrated;
    }
    // The two parties must learn the new ownership immediately (the donor
    // now redirects, the recipient now serves); everyone else learns from
    // the final broadcast, clients lazily.
    PushTableTo(move.from_address, push_from);
    PushTableTo(move.to_address, 0);
  }

  std::vector<PartitionId> chain_changed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.joins_admitted;
    if (rejoin) ++stats_.rejoins_admitted;
    if (options_.cluster.num_replicas > 0) {
      const auto chains_after = SnapshotChains();
      for (PartitionId p = 0; p < table_.num_partitions(); ++p) {
        if (chains_after[p] != chains_before[p]) chain_changed.push_back(p);
      }
    }
  }
  BroadcastDelta(epoch_before);
  // The joiner (or revived rejoiner) is now a replica for partitions it
  // holds no — or stale — data for; stream it up to date before a client
  // failover read can land on it.
  CommandRepairs(chain_changed);
  return fresh;
}

Status Manager::Depart(InstanceId id) {
  std::uint32_t epoch_before;
  NodeAddress departing;
  std::vector<std::pair<PartitionId, InstanceId>> moves;
  std::vector<std::vector<InstanceId>> chains_before;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= table_.instance_count()) {
      return Status(StatusCode::kInvalidArgument, "no such instance");
    }
    epoch_before = table_.epoch();
    departing = table_.Instance(id).address;
    chains_before = SnapshotChains();
    // The placement policy re-assigns the departing instance's partitions
    // over the survivors; everyone else's partitions stay put (a later
    // join's desired-vs-current diff converges any residual imbalance).
    std::vector<InstanceId> survivors;
    for (InstanceId live : table_.AliveIds()) {
      if (live != id) survivors.push_back(live);
    }
    if (survivors.empty()) {
      return Status(StatusCode::kUnavailable, "no remaining instance");
    }
    const PlacementPolicy& policy = GetPlacementPolicy(table_.placement());
    for (PartitionId p : table_.PartitionsOf(id)) {
      InstanceId target =
          policy.DesiredOwner(p, table_.num_partitions(), survivors);
      moves.emplace_back(p, target);
      // Reserve the assignment now so the table reflects the plan.
      table_.SetOwner(p, target);
    }
  }

  for (const auto& [p, target] : moves) {
    NodeAddress target_address;
    {
      std::lock_guard<std::mutex> lock(mu_);
      target_address = table_.Instance(target).address;
    }
    Status status = CommandMigration(departing, p, target_address);
    if (!status.ok()) {
      ZHT_WARN << "departure migration of partition " << p
               << " failed: " << status.ToString();
    }
    PushTableTo(target_address, 0);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.partitions_migrated;
    }
  }

  std::vector<PartitionId> chain_changed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    table_.MarkDead(id);  // departed == no longer serving
    ++stats_.departures;
    if (options_.cluster.num_replicas > 0) {
      const auto chains_after = SnapshotChains();
      for (PartitionId p = 0; p < table_.num_partitions(); ++p) {
        if (chains_after[p] != chains_before[p]) chain_changed.push_back(p);
      }
    }
  }
  // The departing node keeps answering until it actually shuts down; give
  // it the final table so it redirects rather than serving empty stores.
  PushTableTo(departing, 0);
  BroadcastDelta(epoch_before);
  // Members recruited into the shrunken chains hold no copy of the
  // departed node's partitions yet; stream them before failover reads hit.
  CommandRepairs(chain_changed);
  return Status::Ok();
}

Status Manager::HandleFailure(InstanceId id) {
  std::uint32_t epoch_before;
  std::vector<PartitionId> affected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= table_.instance_count()) {
      return Status(StatusCode::kInvalidArgument, "no such instance");
    }
    if (!table_.Instance(id).alive) return Status::Ok();  // already handled
    epoch_before = table_.epoch();
    // Every partition whose replica chain contained the dead instance lost
    // a copy and needs its replication level rebuilt — not just the ones
    // the dead instance owned. Collect them BEFORE MarkDead: afterwards
    // the chains no longer mention the dead member.
    for (PartitionId p = 0; p < table_.num_partitions(); ++p) {
      auto chain = table_.ReplicaChain(p, options_.cluster.num_replicas + 1);
      if (std::find(chain.begin(), chain.end(), id) != chain.end()) {
        affected.push_back(p);
      }
    }
    table_.MarkDead(id);
    for (PartitionId p : table_.PartitionsOf(id)) {
      // First alive replica becomes the owner; data is already there
      // because replication placed it (§III.H).
      auto chain = table_.ReplicaChain(p, options_.cluster.num_replicas + 1);
      InstanceId replacement = id;
      for (InstanceId candidate : chain) {
        if (candidate != id && table_.Instance(candidate).alive) {
          replacement = candidate;
          break;
        }
      }
      if (replacement == id) {
        ZHT_ERROR << "partition " << p << " lost: no alive replica";
        continue;
      }
      table_.SetOwner(p, replacement);
    }
    ++stats_.failures_handled;
  }

  BroadcastDelta(epoch_before);

  // "initiates a rebuilding of the replicas ... to maintain the specified
  // level of replication" (§III.C): command the surviving owner of every
  // affected partition to digest-probe its chain and stream the lost copy.
  CommandRepairs(affected);
  return Status::Ok();
}

Response Manager::Handle(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  switch (request.op) {
    case OpCode::kJoinRequest: {
      auto address = NodeAddress::Parse(request.key);
      if (!address.ok()) {
        resp.status = address.status().raw();
        return resp;
      }
      std::uint32_t node = static_cast<std::uint32_t>(
          std::strtoul(request.value.c_str(), nullptr, 10));
      auto admitted = AdmitJoin(*address, node);
      if (!admitted.ok()) {
        resp.status = admitted.status().raw();
        return resp;
      }
      resp.value = std::to_string(*admitted);
      std::lock_guard<std::mutex> lock(mu_);
      resp.epoch = table_.epoch();
      resp.membership = table_.EncodeFull();
      return resp;
    }
    case OpCode::kDepartRequest: {
      InstanceId id = static_cast<InstanceId>(
          std::strtoul(request.key.c_str(), nullptr, 10));
      Status status = request.value == "failed" ? HandleFailure(id)
                                                : Depart(id);
      resp.status = status.raw();
      std::lock_guard<std::mutex> lock(mu_);
      resp.epoch = table_.epoch();
      return resp;
    }
    case OpCode::kMembershipPull: {
      std::lock_guard<std::mutex> lock(mu_);
      resp.epoch = table_.epoch();
      resp.membership = request.epoch == 0
                            ? table_.EncodeFull()
                            : table_.EncodeDelta(request.epoch);
      return resp;
    }
    case OpCode::kMembershipPush: {
      std::lock_guard<std::mutex> lock(mu_);
      resp.status = table_.ApplyUpdate(request.value).raw();
      resp.epoch = table_.epoch();
      return resp;
    }
    case OpCode::kPing: {
      std::lock_guard<std::mutex> lock(mu_);
      resp.epoch = table_.epoch();
      return resp;
    }
    default:
      resp.status = Status(StatusCode::kInvalidArgument).raw();
      return resp;
  }
}

}  // namespace zht
