#include "core/hot_key_cache.h"

#include <functional>

namespace zht {

HotKeyCache::HotKeyCache(std::size_t capacity) {
  if (capacity == 0) return;
  std::size_t sets = 1;
  while (sets * kWays < capacity) sets <<= 1;
  num_sets_ = sets;
  slots_ = std::make_unique<Slot[]>(num_sets_ * kWays);
}

std::size_t HotKeyCache::HashOf(std::string_view key) {
  return std::hash<std::string_view>{}(key);
}

void HotKeyCache::Publish(Slot& slot, std::shared_ptr<const Entry> entry,
                          std::uint32_t tag) {
  const bool was_empty = slot.entry == nullptr;
  const bool now_empty = entry == nullptr;
  // Swap under the slot lock; destroy the displaced entry after release so
  // a reader spinning on this slot never waits on a string deallocation.
  std::shared_ptr<const Entry> old;
  {
    SlotLock lock(slot);
    slot.tag.store(now_empty ? 0 : tag, std::memory_order_relaxed);
    old = std::move(slot.entry);
    slot.entry = std::move(entry);
  }
  if (!was_empty && now_empty) {
    size_.fetch_sub(1, std::memory_order_relaxed);
  } else if (was_empty && !now_empty) {
    size_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool HotKeyCache::TryGet(std::string_view key, std::string* value) const {
  if (!enabled()) return false;
  const std::size_t hash = HashOf(key);
  const std::uint32_t want = TagOf(hash);
  const std::size_t base = SetBase(hash);
  for (std::size_t way = 0; way < kWays; ++way) {
    const Slot& slot = slots_[base + way];
    // The tag filter keeps the common no-match way at a single plain load.
    // It races with the writer, but only advisorily: the entry pointer
    // copied under the lock is the ground truth.
    if (slot.tag.load(std::memory_order_acquire) != want) continue;
    std::shared_ptr<const Entry> entry;
    {
      SlotLock lock(slot);
      entry = slot.entry;
    }
    if (entry != nullptr && entry->key == key) {
      value->assign(entry->value);
      return true;
    }
  }
  return false;
}

void HotKeyCache::Put(std::string_view key, PartitionId partition,
                      std::string_view value) {
  if (!enabled()) return;
  auto entry = std::make_shared<Entry>();
  entry->key.assign(key);
  entry->value.assign(value);
  entry->partition = partition;

  const std::size_t hash = HashOf(key);
  const std::uint32_t tag = TagOf(hash);
  const std::size_t base = SetBase(hash);
  std::size_t victim = base;
  std::uint64_t victim_tick = ~std::uint64_t{0};
  for (std::size_t way = 0; way < kWays; ++way) {
    Slot& slot = slots_[base + way];
    if (slot.entry != nullptr && slot.entry->key == key) {
      slot.tick = ++tick_;
      Publish(slot, std::move(entry), tag);
      return;
    }
    // Prefer an empty way; otherwise evict the least recently stamped.
    const std::uint64_t tick = slot.entry == nullptr ? 0 : slot.tick;
    if (tick < victim_tick) {
      victim_tick = tick;
      victim = base + way;
    }
  }
  slots_[victim].tick = ++tick_;
  Publish(slots_[victim], std::move(entry), tag);
}

bool HotKeyCache::Invalidate(std::string_view key) {
  if (!enabled()) return false;
  const std::size_t base = SetBase(HashOf(key));
  for (std::size_t way = 0; way < kWays; ++way) {
    Slot& slot = slots_[base + way];
    if (slot.entry != nullptr && slot.entry->key == key) {
      Publish(slot, nullptr, 0);
      return true;
    }
  }
  return false;
}

std::size_t HotKeyCache::DropPartition(PartitionId partition) {
  if (!enabled()) return 0;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < num_sets_ * kWays; ++i) {
    Slot& slot = slots_[i];
    if (slot.entry != nullptr && slot.entry->partition == partition) {
      Publish(slot, nullptr, 0);
      ++dropped;
    }
  }
  return dropped;
}

std::size_t HotKeyCache::Clear() {
  if (!enabled()) return 0;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < num_sets_ * kWays; ++i) {
    Slot& slot = slots_[i];
    if (slot.entry != nullptr) {
      Publish(slot, nullptr, 0);
      ++dropped;
    }
  }
  return dropped;
}

}  // namespace zht
