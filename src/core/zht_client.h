// ZhtClient: the four-call API of the paper (§III.A):
//
//   int    insert(key, value);
//   value  lookup(key);
//   int    remove(key);
//   int    append(key, value);
//
// plus ping and the broadcast primitive. The client owns a full membership
// table (zero-hop routing), refreshes it lazily from REDIRECT responses,
// retries with exponential back-off on timeouts, fails over along the
// replica chain, and reports dead nodes to a manager when one is
// configured (§III.C "Node departures").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/failure_detector.h"
#include "membership/membership_table.h"
#include "net/transport.h"

namespace zht {

struct ZhtClientOptions {
  int num_replicas = 0;            // must match the servers' setting
  Nanos op_timeout = 200 * kNanosPerMilli;
  int max_attempts = 8;            // total tries across redirects/retries
  Nanos migrating_backoff = 1 * kNanosPerMilli;
  FailureDetectorOptions failure_detector;
  std::optional<NodeAddress> manager;  // failure-report destination
  bool sleep_on_backoff = true;    // disable in simulated-time tests
  std::uint64_t client_id = 0;     // 0 = pick a random identity; paired
                                   // with seq it makes append at-most-once
                                   // under retransmission
};

struct ZhtClientStats {
  std::uint64_t ops = 0;
  std::uint64_t redirects_followed = 0;
  std::uint64_t failovers = 0;   // attempts moved down the replica chain
  std::uint64_t retries = 0;
  std::uint64_t nodes_reported_dead = 0;
};

class ZhtClient {
 public:
  ZhtClient(MembershipTable table, const ZhtClientOptions& options,
            ClientTransport* transport);

  // The paper's API. Insert overwrites; Remove of a missing key returns
  // kNotFound; Append creates the key when absent.
  Status Insert(std::string_view key, std::string_view value);
  Result<std::string> Lookup(std::string_view key);
  Status Remove(std::string_view key);
  Status Append(std::string_view key, std::string_view value);

  // Liveness probe of a specific instance.
  Status Ping(InstanceId instance);

  // Broadcast primitive (§VI): delivers the pair to every instance via a
  // spanning tree rooted at instance 0.
  Status Broadcast(std::string_view key, std::string_view value);

  // Pulls a fresh membership table from the given (or primary) instance.
  Status RefreshMembership(std::optional<InstanceId> from = std::nullopt);

  MembershipTable& table() { return table_; }
  const MembershipTable& table() const { return table_; }
  const ZhtClientStats& stats() const { return stats_; }

 private:
  Result<Response> Execute(OpCode op, std::string_view key,
                           std::string_view value);
  void ReportFailure(InstanceId instance);
  void Backoff(Nanos duration);

  MembershipTable table_;
  ZhtClientOptions options_;
  ClientTransport* transport_;
  FailureDetector detector_;
  ZhtClientStats stats_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t client_id_ = 0;
};

}  // namespace zht
