// ZhtClient: the four-call API of the paper (§III.A):
//
//   int    insert(key, value);
//   value  lookup(key);
//   int    remove(key);
//   int    append(key, value);
//
// plus ping, the broadcast primitive, and the batched Multi* variants.
// The client owns a full membership table (zero-hop routing), refreshes it
// lazily from REDIRECT responses, retries with exponential back-off on
// timeouts, fails over along the replica chain, and reports dead nodes to
// a manager when one is configured (§III.C "Node departures").
//
// ## Status contract
//
// Every public call resolves to exactly one of these codes:
//
//   kOk              the operation applied (or the key was found).
//   kNotFound        Lookup/Remove of an absent key. Never a failure of
//                    the transport — the owning server answered.
//   kInvalidArgument the request is malformed (e.g. unknown instance id).
//   kTimeout         servers were reachable but no attempt completed
//                    within the per-op budget (includes a partition stuck
//                    in kMigrating past max_attempts).
//   kUnavailable     a transport-level failure: no alive replica for the
//                    key, or every candidate connection failed outright.
//                    Distinguished from kTimeout so callers can tell "slow
//                    cluster" from "dead cluster".
//
// kRedirect and kMigrating NEVER escape this API: redirects are followed
// (applying the piggybacked membership delta) and migrating partitions are
// retried with back-off, both within the same logical operation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/cluster_options.h"
#include "core/failure_detector.h"
#include "membership/membership_table.h"
#include "net/transport.h"

namespace zht {

struct ZhtClientOptions {
  ClusterOptions cluster;          // must match the servers' setting
  // Retry budget per logical op. Three independent pools of this size:
  // hard attempts (transport failures, failovers, redirects), kMigrating
  // retries, and admission-control shed retries — so a migration stall
  // overlapping a shed burst (routine under churn) cannot spuriously
  // exhaust the op. Each pool alone still bounds the op.
  int max_attempts = 8;
  // Retry backoff for kMigrating: the first retry sleeps migrating_backoff,
  // then grows with decorrelated jitter up to migrating_backoff_cap (so a
  // herd of clients stuck behind one migration desynchronizes). With
  // sleep_on_backoff=false the schedule stays a deterministic fixed base
  // for simulated-time tests.
  Nanos migrating_backoff = 1 * kNanosPerMilli;
  Nanos migrating_backoff_cap = 64 * kNanosPerMilli;
  FailureDetectorOptions failure_detector;
  std::optional<NodeAddress> manager;  // failure-report destination
  bool sleep_on_backoff = true;    // disable in simulated-time tests
  std::uint64_t client_id = 0;     // 0 = pick a random identity; paired
                                   // with seq it makes append at-most-once
                                   // under retransmission
};

// Decorrelated-jitter backoff (exponential in expectation, uncorrelated
// across clients): returns `base` on the first retry (prev < base), then a
// uniform draw from [base, min(cap, prev * 3)]. Pure in (prev, base, cap,
// rng state) so the growth schedule is unit-testable.
Nanos DecorrelatedBackoff(Nanos prev, Nanos base, Nanos cap, Rng& rng);

// One key/value pair for the batched mutation calls.
struct KeyValue {
  std::string key;
  std::string value;
};

struct ZhtClientStats {
  std::uint64_t ops = 0;
  std::uint64_t redirects_followed = 0;
  std::uint64_t failovers = 0;   // attempts moved down the replica chain
  std::uint64_t retries = 0;
  std::uint64_t nodes_reported_dead = 0;
  std::uint64_t shed_backoffs = 0;  // kUnavailable + retry-after honored
  // Explicit kMembershipPull snapshot fetches (redirect fallback +
  // RefreshMembership). Coalesced: at most one pull per membership epoch,
  // so a redirect storm during churn cannot thundering-herd the cluster
  // with full-table fetches.
  std::uint64_t membership_pulls = 0;
};

class ZhtClient {
 public:
  ZhtClient(MembershipTable table, const ZhtClientOptions& options,
            ClientTransport* transport);

  // The paper's API. Insert overwrites; Remove of a missing key returns
  // kNotFound; Append creates the key when absent.
  Status Insert(std::string_view key, std::string_view value);
  Result<std::string> Lookup(std::string_view key);
  Status Remove(std::string_view key);
  Status Append(std::string_view key, std::string_view value);

  // Batched variants: keys are sharded by owning instance (zero-hop, from
  // the local membership table), one pipelined BATCH call goes to each
  // owner, and the per-key outcomes are spliced back into input order.
  // Each element obeys the status contract above — a redirected or
  // migrating sub-operation is retried within the call, and one slow shard
  // cannot fail the others. Results are positional: result[i] is the
  // outcome for input i.
  std::vector<Status> MultiInsert(std::span<const KeyValue> pairs);
  std::vector<Result<std::string>> MultiLookup(
      std::span<const std::string> keys);
  std::vector<Status> MultiRemove(std::span<const std::string> keys);

  // Liveness probe of a specific instance.
  Status Ping(InstanceId instance);

  // Broadcast primitive (§VI): delivers the pair to every instance via a
  // spanning tree rooted at instance 0.
  Status Broadcast(std::string_view key, std::string_view value);

  // Pulls a fresh membership table from the given (or primary) instance.
  Status RefreshMembership(std::optional<InstanceId> from = std::nullopt);

  MembershipTable& table() { return table_; }
  const MembershipTable& table() const { return table_; }
  const ZhtClientStats& stats() const { return stats_; }
  // End-to-end per-op latency histograms (client.op.<name>.latency_ns,
  // covering redirects/retries/failovers within one logical op) plus
  // counters mirroring ZhtClientStats.
  const MetricsRegistry& metrics() const { return metrics_; }
  // Observability for the detector's bounded-state guarantee: how many
  // destinations it currently tracks (pruned on membership updates).
  std::size_t detector_tracked_count() const {
    return detector_.tracked_count();
  }

 private:
  // Wraps ExecuteInternal with the end-to-end latency histogram.
  Result<Response> Execute(OpCode op, std::string_view key,
                           std::string_view value);
  Result<Response> ExecuteInternal(OpCode op, std::string_view key,
                                   std::string_view value);
  // Shard-by-owner batch engine behind the Multi* calls: returns one final
  // Response per input, in input order.
  std::vector<Result<Response>> ExecuteBatch(
      OpCode op, std::span<const std::string> keys,
      std::span<const std::string> values);
  void ReportFailure(InstanceId instance);
  void Backoff(Nanos duration);
  // Applies a membership update; evicts failure-detector state for
  // addresses that left the table AND for instances that transitioned to
  // alive (a rejoined node must not inherit backoff/failure counts from
  // its previous life).
  Status ApplyMembership(std::string_view update);
  // Snapshot pull from `from`, rate-limited to one per membership epoch:
  // skipped when a pull already covered `observed_epoch` (the epoch the
  // redirecting server reported; 0 = unknown, always pull) or when a pull
  // is already underway for this logical call (batch sub-ops coalesce).
  void MaybePullMembership(const NodeAddress& from,
                           std::uint32_t observed_epoch);

  MembershipTable table_;
  ZhtClientOptions options_;
  ClientTransport* transport_;
  FailureDetector detector_;
  ZhtClientStats stats_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t client_id_ = 0;
  Rng backoff_rng_;  // jitter source, seeded from client_id_
  std::uint32_t last_pull_epoch_ = 0;  // highest epoch a pull has covered
  bool pull_inflight_ = false;         // coalesces pulls within one call

  // Hot-path metric handles resolved at construction (see
  // common/metrics.h); op_hist_[op-1] covers kInsert..kAppend.
  MetricsRegistry metrics_;
  Histogram* op_hist_[4] = {};
  Histogram* batch_hist_ = nullptr;       // one Multi* call end to end
  Histogram* batch_size_hist_ = nullptr;  // keys per Multi* call
  Counter* retry_counter_ = nullptr;
  Counter* failover_counter_ = nullptr;
  Counter* redirect_counter_ = nullptr;
  Counter* membership_pull_counter_ = nullptr;
};

}  // namespace zht
