#include "core/local_cluster.h"

#include <algorithm>

#include "net/tcp_client.h"
#include "net/udp_client.h"

namespace zht {

LocalCluster::LocalCluster(const LocalClusterOptions& options)
    : options_(options) {}

LocalCluster::~LocalCluster() {
  // Servers stop their async workers in their destructors; epoll servers
  // must stop first so no new requests arrive mid-teardown.
  for (auto& es : epoll_servers_) es->Stop();
  // Quiesce background peer I/O (async replication legs, rebuild probes and
  // checkpoint streams on finisher threads) before any server is destroyed:
  // servers_ tears down in vector order, and a straggling probe from a
  // later server must not call into an earlier one that is already gone.
  for (auto& server : servers_) {
    if (server) server->FlushAsyncReplication();
  }
  // Unbind every loopback endpoint under its exclusive lock. Deliveries
  // hold the lock shared across check + invoke, so after this loop returns
  // no thread can still be entering a server, and any late cross-server
  // call (e.g. a retry scheduled by teardown-era errors) short-circuits to
  // kUnavailable instead of touching a destroyed server.
  for (auto& slot : slots_) {
    std::unique_lock<std::shared_mutex> guard(slot->mu);
    slot->target = nullptr;
  }
}

std::unique_ptr<ClientTransport> LocalCluster::MakeTransport(
    std::optional<NodeAddress> self) {
  std::unique_ptr<ClientTransport> inner;
  switch (options_.transport) {
    case ClusterTransport::kLoopback:
      inner = std::make_unique<LoopbackTransport>(&network_);
      break;
    case ClusterTransport::kTcp: {
      TcpClientOptions tcp;
      tcp.cache_connections = options_.tcp_connection_cache;
      inner = std::make_unique<TcpClient>(tcp);
      break;
    }
    case ClusterTransport::kUdp:
      inner = std::make_unique<UdpClient>();
      break;
  }
  if (inner && options_.fault_plan) {
    return std::make_unique<FaultInjectingTransport>(
        std::move(inner), options_.fault_plan, std::move(self));
  }
  return inner;
}

Result<NodeAddress> LocalCluster::Expose(std::shared_ptr<HandlerSlot> slot,
                                         std::optional<NodeAddress> fixed,
                                         bool start_now) {
  slots_.push_back(slot);
  AsyncRequestHandler handler = [slot](Request&& request,
                                       ResponseCallback done) {
    // Shared across check + invoke so the destructor's exclusive clear
    // cannot land between them (the invoke enters the server's in-flight
    // accounting, which its own destructor then waits out).
    std::shared_lock<std::shared_mutex> guard(slot->mu);
    if (!slot->target) {
      Response resp;
      resp.seq = request.seq;
      resp.status = Status(StatusCode::kUnavailable).raw();
      done(std::move(resp));
      return;
    }
    slot->target(std::move(request), std::move(done));
  };

  if (options_.transport == ClusterTransport::kLoopback) {
    if (fixed) {
      network_.Register(*fixed, std::move(handler));
      return *fixed;
    }
    return network_.Register(std::move(handler));
  }
  if (fixed) {
    return Status(StatusCode::kInvalidArgument,
                  "fixed addresses are loopback-only");
  }
  EpollServerOptions es;
  es.enable_tcp = true;
  es.enable_udp = true;
  es.num_reactors = options_.num_reactors;
  auto server = EpollServer::Create(es, std::move(handler));
  if (!server.ok()) return server.status();
  if (start_now) {
    Status started = (*server)->Start();
    if (!started.ok()) return started;
  }
  NodeAddress address = (*server)->address();
  epoll_servers_.push_back(std::move(*server));
  return address;
}

void LocalCluster::WireReactors(ZhtServer& server, EpollServer& es) {
  ZhtServer* srv = &server;
  const int reactors = es.num_reactors();
  for (int e = 0; e < reactors; ++e) {
    es.SetReactorHooks(
        e, [srv, e] { srv->EnterExecutorThread(e); },
        [srv, e] { srv->RunExecutor(e); });
  }
  for (std::size_t shard = 0; shard < srv->num_shards(); ++shard) {
    const int executor = static_cast<int>(shard % reactors);
    srv->BindShardExecutor(shard, executor, es.ReactorWaker(executor));
  }
  es.SetPlacement(
      [srv](const Request& request) { return srv->PreferredExecutor(request); });
  es.Start();
}

Result<std::unique_ptr<LocalCluster>> LocalCluster::Start(
    const LocalClusterOptions& options) {
  std::unique_ptr<LocalCluster> cluster(new LocalCluster(options));
  Status status = cluster->Boot();
  if (!status.ok()) return status;
  return cluster;
}

Status LocalCluster::Boot() {
  Status valid = options_.cluster.Validate();
  if (!valid.ok()) return valid;

  // 1. Expose every instance (addresses first: the table needs them) and
  //    establish the bootstrap membership — either the static uniform
  //    layout (§III.C) or a restored snapshot from a prior incarnation.
  MembershipTable table;
  std::uint32_t nodes = 0;
  std::vector<std::shared_ptr<HandlerSlot>> server_slots;
  if (options_.initial_table) {
    if (options_.transport != ClusterTransport::kLoopback) {
      return Status(StatusCode::kInvalidArgument,
                    "initial_table restart is loopback-only");
    }
    table = *options_.initial_table;
    if (table.instance_count() == 0) {
      return Status(StatusCode::kInvalidArgument, "empty initial table");
    }
    options_.num_instances = static_cast<std::uint32_t>(table.instance_count());
    options_.num_partitions = table.num_partitions();
    for (const InstanceInfo& info : table.instances()) {
      auto slot = std::make_shared<HandlerSlot>();
      auto address = Expose(slot, info.address);
      if (!address.ok()) return address.status();
      server_slots.push_back(slot);
      instance_addresses_.push_back(*address);
      nodes = std::max(nodes, info.physical_node + 1);
    }
  } else {
    const std::uint32_t n = options_.num_instances;
    if (n == 0) return Status(StatusCode::kInvalidArgument, "no instances");
    if (options_.num_partitions == 0) options_.num_partitions = n * 64;
    for (std::uint32_t i = 0; i < n; ++i) {
      auto slot = std::make_shared<HandlerSlot>();
      // Reactor hooks and placement must be wired before the loops start,
      // which needs the ZhtServer; start after step 2.
      auto address = Expose(slot, std::nullopt, /*start_now=*/false);
      if (!address.ok()) return address.status();
      server_slots.push_back(slot);
      instance_addresses_.push_back(*address);
    }
    table = MembershipTable::CreateUniform(
        options_.num_partitions, instance_addresses_,
        options_.instances_per_node, options_.hash_kind,
        options_.cluster.placement_kind());
    nodes = (n + options_.instances_per_node - 1) /
            options_.instances_per_node;
  }

  // 2. Servers. Over sockets, one shard per reactor so each event loop
  // owns a disjoint partition set end to end; the loops only start once
  // the executors are bound.
  const bool sockets = options_.transport != ClusterTransport::kLoopback;
  for (std::uint32_t i = 0; i < options_.num_instances; ++i) {
    auto transport = MakeTransport(instance_addresses_[i]);
    ZhtServerOptions so;
    so.self = i;
    so.cluster = options_.cluster;
    so.store_factory = options_.store_factory;
    if (sockets) {
      so.num_shards = static_cast<std::size_t>(
          options_.num_reactors < 1 ? 1 : options_.num_reactors);
    }
    auto server = std::make_unique<ZhtServer>(table, so, transport.get());
    {
      std::unique_lock<std::shared_mutex> guard(server_slots[i]->mu);
      server_slots[i]->target = server->AsyncHandler();
    }
    if (sockets) WireReactors(*server, *epoll_servers_[i]);
    peer_transports_.push_back(std::move(transport));
    servers_.push_back(std::move(server));
  }

  // 3. One manager per physical node.
  next_physical_node_ = nodes;
  for (std::uint32_t node = 0; node < nodes; ++node) {
    auto slot = std::make_shared<HandlerSlot>();
    auto address = Expose(slot);
    if (!address.ok()) return address.status();
    auto transport = MakeTransport(*address);
    ManagerOptions mo;
    mo.cluster = options_.cluster;
    auto manager = std::make_unique<Manager>(table, mo, transport.get());
    {
      std::unique_lock<std::shared_mutex> guard(slot->mu);
      slot->target = ToAsync(manager->AsHandler());
    }
    peer_transports_.push_back(std::move(transport));
    managers_.push_back(std::move(manager));
    manager_addresses_.push_back(*address);
  }
  for (std::size_t node = 0; node < managers_.size(); ++node) {
    std::vector<NodeAddress> peers;
    for (std::size_t other = 0; other < manager_addresses_.size(); ++other) {
      if (other != node) peers.push_back(manager_addresses_[other]);
    }
    managers_[node]->SetPeerManagers(std::move(peers));
  }
  return Status::Ok();
}

ClientHandle LocalCluster::CreateClient(ZhtClientOptions overrides) {
  overrides.cluster.num_replicas = options_.cluster.num_replicas;
  if (!overrides.manager && !manager_addresses_.empty()) {
    overrides.manager = manager_addresses_[0];
  }
  auto transport = MakeTransport();
  auto client = std::make_unique<ZhtClient>(TableSnapshot(), overrides,
                                            transport.get());
  return ClientHandle(std::move(transport), std::move(client));
}

MembershipTable LocalCluster::TableSnapshot() const {
  return managers_.empty() ? MembershipTable()
                           : managers_[0]->TableSnapshot();
}

void LocalCluster::KillInstance(std::size_t i) {
  if (options_.transport == ClusterTransport::kLoopback) {
    network_.SetDown(instance_addresses_[i], true);
  } else if (i < epoll_servers_.size()) {
    epoll_servers_[i]->Stop();
  }
}

void LocalCluster::ReviveInstance(std::size_t i) {
  if (options_.transport == ClusterTransport::kLoopback) {
    network_.SetDown(instance_addresses_[i], false);
  } else if (i < epoll_servers_.size()) {
    epoll_servers_[i]->Start();
  }
}

Result<InstanceId> LocalCluster::JoinNewInstance(std::size_t via_node) {
  if (via_node >= managers_.size()) {
    return Status(StatusCode::kInvalidArgument, "no such manager");
  }
  // Bring up the new (empty) instance first, then ask the manager to admit
  // it; the manager pulls partitions onto it and broadcasts (§III.C).
  const bool sockets = options_.transport != ClusterTransport::kLoopback;
  auto slot = std::make_shared<HandlerSlot>();
  auto address = Expose(slot, std::nullopt, /*start_now=*/!sockets);
  if (!address.ok()) return address.status();

  auto transport = MakeTransport(*address);
  ZhtServerOptions so;
  so.self = static_cast<InstanceId>(servers_.size());
  so.cluster = options_.cluster;
  so.store_factory = options_.store_factory;
  if (sockets) {
    so.num_shards = static_cast<std::size_t>(
        options_.num_reactors < 1 ? 1 : options_.num_reactors);
  }
  // Starts with an empty table; the manager pushes a snapshot during join.
  auto server = std::make_unique<ZhtServer>(
      MembershipTable(options_.num_partitions, options_.hash_kind), so,
      transport.get());
  {
    std::unique_lock<std::shared_mutex> guard(slot->mu);
    slot->target = server->AsyncHandler();
  }
  if (sockets) WireReactors(*server, *epoll_servers_.back());
  peer_transports_.push_back(std::move(transport));
  servers_.push_back(std::move(server));
  instance_addresses_.push_back(*address);

  std::uint32_t physical_node = next_physical_node_++;
  auto admitted = managers_[via_node]->AdmitJoin(*address, physical_node);
  if (!admitted.ok()) return admitted.status();
  return *admitted;
}

Result<InstanceId> LocalCluster::RejoinInstance(std::size_t i,
                                                std::size_t via_node) {
  if (i >= servers_.size()) {
    return Status(StatusCode::kInvalidArgument, "no such instance");
  }
  if (via_node >= managers_.size()) {
    return Status(StatusCode::kInvalidArgument, "no such manager");
  }
  // The server object (and its address registration) survived the kill;
  // bring the endpoint back, then re-admit through the manager, which
  // recognizes the address and revives the old instance id — pushing the
  // current table to it before migrating anything back.
  ReviveInstance(i);
  MembershipTable table = TableSnapshot();
  const std::uint32_t node = i < table.instance_count()
                                 ? table.Instance(static_cast<InstanceId>(i))
                                       .physical_node
                                 : next_physical_node_;
  return managers_[via_node]->AdmitJoin(instance_addresses_[i], node);
}

void LocalCluster::FlushAllAsyncReplication() {
  for (auto& server : servers_) server->FlushAsyncReplication();
}

}  // namespace zht
