// Per-shard hot-key read cache (ROADMAP item 4, DESIGN.md §13). A small
// set-associative cache in front of a shard's partition stores that lets
// the ingress path answer hot lookups without posting into the shard
// mailbox at all.
//
// Concurrency model: exactly one writer — the owning shard's drain, which
// fills on lookup misses, invalidates on every applied mutation, and drops
// whole partitions on migration/rebuild/membership change — plus any
// number of reader threads probing at ingress. Each slot publishes an
// immutable entry through a shared_ptr guarded by a per-slot spinlock held
// only for the pointer copy/swap, so readers never block each other for
// longer than a refcount bump and the shard drain never waits on a reader
// holding a long critical section. No cross-shard state, no global locks:
// the cache composes with the shared-nothing mailbox architecture.
//
// Staleness contract: the cache may only ever serve a value that equals
// the current store contents for an owned, quiescent partition. The server
// guarantees this by (a) invalidating synchronously, inside the same shard
// drain that applies a mutation, before the mutation is acked; (b)
// dropping a partition's entries before any migration/rebuild stream can
// change the store underneath it; and (c) clearing the shard's cache on
// every membership update, so an entry can never outlive this instance's
// ownership of its partition.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "hashing/partition_space.h"

namespace zht {

class HotKeyCache {
 public:
  // `capacity` in entries; rounded up to a power-of-two number of
  // kWays-wide sets. 0 disables the cache (every probe misses, every
  // writer op is a no-op).
  explicit HotKeyCache(std::size_t capacity);

  HotKeyCache(const HotKeyCache&) = delete;
  HotKeyCache& operator=(const HotKeyCache&) = delete;

  bool enabled() const { return num_sets_ != 0; }
  std::size_t capacity() const { return num_sets_ * kWays; }

  // Reader path (any thread): copies the cached value into `*value` on a
  // hit. Lock-held work is one shared_ptr copy; the (possibly large) value
  // copy happens outside the slot lock.
  bool TryGet(std::string_view key, std::string* value) const;

  // Writer path (owning shard drain only).
  void Put(std::string_view key, PartitionId partition,
           std::string_view value);
  bool Invalidate(std::string_view key);     // true if the key was cached
  std::size_t DropPartition(PartitionId partition);  // entries removed
  std::size_t Clear();                               // entries removed

  // Approximate live-entry count (any thread; for tests/telemetry).
  std::uint64_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  static constexpr std::size_t kWays = 4;

  struct Entry {
    std::string key;
    std::string value;
    PartitionId partition = 0;
  };

  // One cache line of metadata per slot would be overkill at this size;
  // the spinlock is uncontended except on genuinely hot slots, where the
  // critical section is a refcount bump. `tag` is a lossy key fingerprint
  // (0 = empty) readers check before touching the lock: a probe skips
  // non-matching ways with one plain load instead of a lock/refcount
  // round-trip. It is advisory only — the entry pointer read under the
  // lock is the truth, so a stale tag costs a wasted check or a spurious
  // miss, never a stale value.
  struct Slot {
    mutable std::atomic<bool> busy{false};
    std::atomic<std::uint32_t> tag{0};
    std::shared_ptr<const Entry> entry;
    std::uint64_t tick = 0;  // writer-only recency stamp (victim choice)
  };

  class SlotLock {
   public:
    explicit SlotLock(const Slot& slot) : slot_(slot) {
      while (slot_.busy.exchange(true, std::memory_order_acquire)) {
      }
    }
    ~SlotLock() { slot_.busy.store(false, std::memory_order_release); }

   private:
    const Slot& slot_;
  };

  static std::size_t HashOf(std::string_view key);
  static std::uint32_t TagOf(std::size_t hash) {
    return static_cast<std::uint32_t>(hash >> 32) | 1u;  // never 0
  }
  std::size_t SetBase(std::size_t hash) const {
    return (hash & (num_sets_ - 1)) * kWays;
  }
  void Publish(Slot& slot, std::shared_ptr<const Entry> entry,
               std::uint32_t tag);

  std::size_t num_sets_ = 0;  // power of two (0 = disabled)
  std::unique_ptr<Slot[]> slots_;
  std::uint64_t tick_ = 0;  // writer-only
  std::atomic<std::uint64_t> size_{0};
};

}  // namespace zht
