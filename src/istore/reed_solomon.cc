#include "istore/reed_solomon.h"

#include <algorithm>

namespace zht::istore {

Result<ReedSolomon> ReedSolomon::Create(int k, int n) {
  if (k < 1 || n < k || n > 255) {
    return Status(StatusCode::kInvalidArgument, "need 1 <= k <= n <= 255");
  }
  // Build an n×k Vandermonde matrix, then right-multiply by the inverse of
  // its top k×k block: the result has an identity on top (systematic) and
  // keeps the any-k-rows-invertible property.
  GfMatrix vandermonde = GfMatrix::Vandermonde(n, k);
  GfMatrix top(k, k);
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < k; ++c) top.at(r, c) = vandermonde.at(r, c);
  }
  auto top_inverse = top.Inverted();
  if (!top_inverse.ok()) return top_inverse.status();
  GfMatrix encode = vandermonde.Multiply(*top_inverse);
  return ReedSolomon(k, n, std::move(encode));
}

std::vector<std::string> ReedSolomon::Encode(std::string_view data) const {
  const std::size_t stripe =
      (data.size() + static_cast<std::size_t>(k_) - 1) /
      static_cast<std::size_t>(k_);
  std::vector<std::string> chunks(static_cast<std::size_t>(n_),
                                  std::string(stripe, '\0'));
  // Data stripes (systematic rows are the identity).
  for (int i = 0; i < k_; ++i) {
    std::size_t offset = static_cast<std::size_t>(i) * stripe;
    if (offset < data.size()) {
      std::size_t len = std::min(stripe, data.size() - offset);
      chunks[static_cast<std::size_t>(i)].replace(0, len,
                                                  data.substr(offset, len));
    }
  }
  // Parity stripes.
  for (int r = k_; r < n_; ++r) {
    auto* out = reinterpret_cast<std::uint8_t*>(
        chunks[static_cast<std::size_t>(r)].data());
    for (int c = 0; c < k_; ++c) {
      Gf256::MulAddRow(
          encode_.at(static_cast<std::size_t>(r),
                     static_cast<std::size_t>(c)),
          reinterpret_cast<const std::uint8_t*>(
              chunks[static_cast<std::size_t>(c)].data()),
          out, stripe);
    }
  }
  return chunks;
}

Result<std::string> ReedSolomon::Decode(
    const std::vector<int>& chunk_ids,
    const std::vector<std::string>& chunks,
    std::size_t original_size) const {
  if (chunk_ids.size() != chunks.size()) {
    return Status(StatusCode::kInvalidArgument, "ids/chunks mismatch");
  }
  if (static_cast<int>(chunk_ids.size()) < k_) {
    return Status(StatusCode::kUnavailable,
                  "need at least k=" + std::to_string(k_) + " chunks, have " +
                      std::to_string(chunk_ids.size()));
  }
  const std::size_t stripe = chunks[0].size();
  for (const auto& chunk : chunks) {
    if (chunk.size() != stripe) {
      return Status(StatusCode::kInvalidArgument, "uneven chunk sizes");
    }
  }

  // Fast path: the first k chunks in natural order are the data stripes
  // themselves (systematic code) — concatenate, no matrix algebra.
  bool systematic = true;
  for (int i = 0; i < k_; ++i) {
    if (chunk_ids[static_cast<std::size_t>(i)] != i) {
      systematic = false;
      break;
    }
  }
  if (systematic) {
    std::string out;
    out.reserve(static_cast<std::size_t>(k_) * stripe);
    for (int i = 0; i < k_; ++i) out += chunks[static_cast<std::size_t>(i)];
    if (original_size > out.size()) {
      return Status(StatusCode::kInvalidArgument, "size exceeds payload");
    }
    out.resize(original_size);
    return out;
  }

  // Use the first k supplied chunks; build the k×k submatrix of their
  // encoding rows and invert it.
  GfMatrix sub(static_cast<std::size_t>(k_), static_cast<std::size_t>(k_));
  for (int r = 0; r < k_; ++r) {
    int id = chunk_ids[static_cast<std::size_t>(r)];
    if (id < 0 || id >= n_) {
      return Status(StatusCode::kInvalidArgument, "bad chunk id");
    }
    for (int c = 0; c < k_; ++c) {
      sub.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
          encode_.at(static_cast<std::size_t>(id),
                     static_cast<std::size_t>(c));
    }
  }
  auto inverse = sub.Inverted();
  if (!inverse.ok()) return inverse.status();

  // Recover each data stripe: stripe_i = sum_j inv[i][j] * chunk_j.
  std::string out(static_cast<std::size_t>(k_) * stripe, '\0');
  for (int i = 0; i < k_; ++i) {
    auto* dst = reinterpret_cast<std::uint8_t*>(
        out.data() + static_cast<std::size_t>(i) * stripe);
    for (int j = 0; j < k_; ++j) {
      Gf256::MulAddRow(
          inverse->at(static_cast<std::size_t>(i),
                      static_cast<std::size_t>(j)),
          reinterpret_cast<const std::uint8_t*>(
              chunks[static_cast<std::size_t>(j)].data()),
          dst, stripe);
    }
  }
  if (original_size > out.size()) {
    return Status(StatusCode::kInvalidArgument, "size exceeds payload");
  }
  out.resize(original_size);
  return out;
}

}  // namespace zht::istore
