// IStore (§V.B): an information-dispersal object store. Files are erasure
// coded into n chunks (any k reconstruct), chunks are spread over n
// distinct storage nodes, and chunk locations are tracked as metadata in
// ZHT — the integration the paper benchmarks in Figure 17.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/zht_client.h"
#include "istore/reed_solomon.h"
#include "net/transport.h"

namespace zht::istore {

// A chunk server: stores chunks by id. Runs behind the same Request
// envelope as everything else (insert = store chunk, lookup = fetch).
class ChunkServer {
 public:
  Response Handle(Request&& request);
  RequestHandler AsHandler() {
    return [this](Request&& req) { return Handle(std::move(req)); };
  }
  std::uint64_t chunks_stored() const { return chunks_stored_; }
  std::uint64_t bytes_stored() const { return bytes_stored_; }

 private:
  std::mutex mu_;
  std::unordered_map<std::string, std::string> chunks_;
  std::uint64_t chunks_stored_ = 0;
  std::uint64_t bytes_stored_ = 0;
};

struct IStoreOptions {
  int k = 0;            // 0 → derive from node count: n = nodes, k = n - m
  int parity = 2;       // m: tolerated chunk-server failures
  Nanos chunk_timeout = kNanosPerSec;
};

struct ObjectManifest {
  int k = 0;
  int n = 0;
  std::uint64_t size = 0;
  std::vector<std::uint32_t> chunk_nodes;  // node index per chunk id

  std::string Encode() const;
  static Result<ObjectManifest> Decode(std::string_view data);
  bool operator==(const ObjectManifest&) const = default;
};

class IStore {
 public:
  // `metadata` is the ZHT client managing chunk-location metadata;
  // `chunk_nodes` are the storage servers' addresses.
  IStore(ZhtClient* metadata, std::vector<NodeAddress> chunk_nodes,
         ClientTransport* transport, IStoreOptions options = {});

  // Encodes and disperses; metadata (the manifest) goes into ZHT.
  Status Put(const std::string& name, std::string_view data);

  // Fetches chunks (tolerating up to `parity` unreachable nodes), decodes.
  Result<std::string> Get(const std::string& name);

  Status Delete(const std::string& name);

  // Metadata ops performed (the Figure 17 metric counts these).
  std::uint64_t metadata_ops() const { return metadata_ops_; }

 private:
  static std::string ChunkKey(const std::string& name, int chunk);

  ZhtClient* metadata_;
  std::vector<NodeAddress> chunk_nodes_;
  ClientTransport* transport_;
  IStoreOptions options_;
  std::uint64_t metadata_ops_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace zht::istore
