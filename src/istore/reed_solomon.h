// Systematic Reed-Solomon erasure coding (k-of-n information dispersal,
// §V.B [47, 48]): data is split into k stripes; n-k parity stripes are
// computed so that ANY k of the n chunks reconstruct the original.
//
// The n×k encoding matrix is a Vandermonde matrix transformed so its top
// k×k block is the identity (systematic: the first k chunks are the plain
// data stripes). Every k-row subset remains invertible.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "istore/gf256.h"

namespace zht::istore {

class ReedSolomon {
 public:
  // 1 <= k <= n <= 255.
  static Result<ReedSolomon> Create(int k, int n);

  int k() const { return k_; }
  int n() const { return n_; }

  // Splits `data` into k stripes (zero-padded to equal length) and returns
  // n chunks, each stripe_size bytes. stripe_size = ceil(size / k).
  std::vector<std::string> Encode(std::string_view data) const;

  // Reconstructs the original data from any k (or more) chunks.
  // `chunk_ids[i]` identifies which of the n chunks `chunks[i]` is.
  // `original_size` trims the padding.
  Result<std::string> Decode(const std::vector<int>& chunk_ids,
                             const std::vector<std::string>& chunks,
                             std::size_t original_size) const;

 private:
  ReedSolomon(int k, int n, GfMatrix encode)
      : k_(k), n_(n), encode_(std::move(encode)) {}

  int k_;
  int n_;
  GfMatrix encode_;  // n × k, top k×k = identity
};

}  // namespace zht::istore
