// GF(2^8) arithmetic (polynomial 0x11d) for the information dispersal
// algorithm (§V.B). Table-driven multiply/divide/inverse plus Gaussian
// elimination for matrix inversion over the field.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace zht::istore {

class Gf256 {
 public:
  static std::uint8_t Add(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t Sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t Mul(std::uint8_t a, std::uint8_t b);
  static std::uint8_t Div(std::uint8_t a, std::uint8_t b);  // b != 0
  static std::uint8_t Inv(std::uint8_t a);                  // a != 0
  static std::uint8_t Pow(std::uint8_t base, std::uint32_t exponent);

  // y += c * x over GF(256), vectorized over a byte span.
  static void MulAddRow(std::uint8_t c, const std::uint8_t* x,
                        std::uint8_t* y, std::size_t n);
};

// Dense byte matrix over GF(256).
class GfMatrix {
 public:
  GfMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  std::uint8_t& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  std::uint8_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  // Identity, Vandermonde (rows of powers of distinct points).
  static GfMatrix Identity(std::size_t n);
  static GfMatrix Vandermonde(std::size_t rows, std::size_t cols);

  GfMatrix Multiply(const GfMatrix& other) const;

  // Inverse via Gauss-Jordan; fails if singular.
  Result<GfMatrix> Inverted() const;

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint8_t> data_;
};

}  // namespace zht::istore
