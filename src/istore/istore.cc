#include "istore/istore.h"

#include "common/log.h"
#include "serialize/wire.h"

namespace zht::istore {

Response ChunkServer::Handle(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  std::lock_guard<std::mutex> lock(mu_);
  switch (request.op) {
    case OpCode::kInsert: {
      auto [it, fresh] = chunks_.insert_or_assign(request.key,
                                                  std::move(request.value));
      if (fresh) {
        ++chunks_stored_;
        bytes_stored_ += it->second.size();
      }
      return resp;
    }
    case OpCode::kLookup: {
      auto it = chunks_.find(request.key);
      if (it == chunks_.end()) {
        resp.status = Status(StatusCode::kNotFound).raw();
      } else {
        resp.value = it->second;
      }
      return resp;
    }
    case OpCode::kRemove: {
      auto it = chunks_.find(request.key);
      if (it == chunks_.end()) {
        resp.status = Status(StatusCode::kNotFound).raw();
      } else {
        bytes_stored_ -= it->second.size();
        --chunks_stored_;
        chunks_.erase(it);
      }
      return resp;
    }
    case OpCode::kPing:
      return resp;
    default:
      resp.status = Status(StatusCode::kNotSupported).raw();
      return resp;
  }
}

std::string ObjectManifest::Encode() const {
  std::string out;
  wire::Writer w(&out);
  w.PutVarint(static_cast<std::uint64_t>(k));
  w.PutVarint(static_cast<std::uint64_t>(n));
  w.PutVarint(size);
  w.PutVarint(chunk_nodes.size());
  for (std::uint32_t node : chunk_nodes) w.PutVarint(node);
  return out;
}

Result<ObjectManifest> ObjectManifest::Decode(std::string_view data) {
  ObjectManifest m;
  wire::Reader r(data);
  std::uint64_t k, n, size, count;
  if (!r.GetVarint(&k) || !r.GetVarint(&n) || !r.GetVarint(&size) ||
      !r.GetVarint(&count)) {
    return Status(StatusCode::kCorruption, "manifest header");
  }
  m.k = static_cast<int>(k);
  m.n = static_cast<int>(n);
  m.size = size;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t node;
    if (!r.GetVarint(&node)) {
      return Status(StatusCode::kCorruption, "manifest nodes");
    }
    m.chunk_nodes.push_back(static_cast<std::uint32_t>(node));
  }
  return m;
}

IStore::IStore(ZhtClient* metadata, std::vector<NodeAddress> chunk_nodes,
               ClientTransport* transport, IStoreOptions options)
    : metadata_(metadata), chunk_nodes_(std::move(chunk_nodes)),
      transport_(transport), options_(options) {}

std::string IStore::ChunkKey(const std::string& name, int chunk) {
  return "c:" + name + "#" + std::to_string(chunk);
}

Status IStore::Put(const std::string& name, std::string_view data) {
  // "At each scale of N nodes, the IDA algorithm was configured to chunk
  // up files into N chunks ... and the N chunks would be sent to N
  // different nodes" (§V.B).
  int n = static_cast<int>(chunk_nodes_.size());
  int k = options_.k > 0 ? options_.k
                         : std::max(1, n - options_.parity);
  if (k > n) return Status(StatusCode::kInvalidArgument, "k > nodes");

  auto codec = ReedSolomon::Create(k, n);
  if (!codec.ok()) return codec.status();
  std::vector<std::string> chunks = codec->Encode(data);

  ObjectManifest manifest;
  manifest.k = k;
  manifest.n = n;
  manifest.size = data.size();

  for (int i = 0; i < n; ++i) {
    std::uint32_t node = static_cast<std::uint32_t>(i);
    Request request;
    request.op = OpCode::kInsert;
    request.seq = next_seq_++;
    request.key = ChunkKey(name, i);
    request.value = std::move(chunks[static_cast<std::size_t>(i)]);
    auto result = transport_->Call(chunk_nodes_[node], request,
                                   options_.chunk_timeout);
    if (!result.ok()) return result.status();
    if (!result->ok()) return result->status_as_object();
    manifest.chunk_nodes.push_back(node);
  }

  // Chunk-location metadata into ZHT.
  ++metadata_ops_;
  return metadata_->Insert("i:" + name, manifest.Encode());
}

Result<std::string> IStore::Get(const std::string& name) {
  ++metadata_ops_;
  auto raw = metadata_->Lookup("i:" + name);
  if (!raw.ok()) return raw.status();
  auto manifest = ObjectManifest::Decode(*raw);
  if (!manifest.ok()) return manifest.status();

  auto codec = ReedSolomon::Create(manifest->k, manifest->n);
  if (!codec.ok()) return codec.status();

  // Gather any k chunks, skipping unreachable nodes.
  std::vector<int> ids;
  std::vector<std::string> chunks;
  for (int i = 0; i < manifest->n &&
                  static_cast<int>(chunks.size()) < manifest->k;
       ++i) {
    std::uint32_t node = manifest->chunk_nodes[static_cast<std::size_t>(i)];
    Request request;
    request.op = OpCode::kLookup;
    request.seq = next_seq_++;
    request.key = ChunkKey(name, i);
    auto result = transport_->Call(chunk_nodes_[node], request,
                                   options_.chunk_timeout);
    if (!result.ok() || !result->ok()) {
      ZHT_DEBUG << "chunk " << i << " unavailable; trying others";
      continue;
    }
    ids.push_back(i);
    chunks.push_back(std::move(result->value));
  }
  return codec->Decode(ids, chunks, manifest->size);
}

Status IStore::Delete(const std::string& name) {
  ++metadata_ops_;
  auto raw = metadata_->Lookup("i:" + name);
  if (!raw.ok()) return raw.status();
  auto manifest = ObjectManifest::Decode(*raw);
  if (!manifest.ok()) return manifest.status();
  for (int i = 0; i < manifest->n; ++i) {
    Request request;
    request.op = OpCode::kRemove;
    request.seq = next_seq_++;
    request.key = ChunkKey(name, i);
    transport_->Call(
        chunk_nodes_[manifest->chunk_nodes[static_cast<std::size_t>(i)]],
        request, options_.chunk_timeout);
  }
  ++metadata_ops_;
  return metadata_->Remove("i:" + name);
}

}  // namespace zht::istore
