#include "istore/gf256.h"

namespace zht::istore {
namespace {

struct Tables {
  std::array<std::uint8_t, 256> log;
  std::array<std::uint8_t, 512> exp;  // doubled to skip a modulo

  Tables() {
    std::uint32_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // undefined; guarded by callers
  }
};

const Tables& T() {
  static Tables tables;
  return tables;
}

}  // namespace

std::uint8_t Gf256::Mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return T().exp[T().log[a] + T().log[b]];
}

std::uint8_t Gf256::Div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  return T().exp[T().log[a] + 255 - T().log[b]];
}

std::uint8_t Gf256::Inv(std::uint8_t a) { return T().exp[255 - T().log[a]]; }

std::uint8_t Gf256::Pow(std::uint8_t base, std::uint32_t exponent) {
  if (exponent == 0) return 1;
  if (base == 0) return 0;
  std::uint32_t l = (static_cast<std::uint32_t>(T().log[base]) * exponent) %
                    255;
  return T().exp[l];
}

void Gf256::MulAddRow(std::uint8_t c, const std::uint8_t* x, std::uint8_t* y,
                      std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) y[i] ^= x[i];
    return;
  }
  const std::uint8_t lc = T().log[c];
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i]) y[i] ^= T().exp[lc + T().log[x[i]]];
  }
}

GfMatrix GfMatrix::Identity(std::size_t n) {
  GfMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

GfMatrix GfMatrix::Vandermonde(std::size_t rows, std::size_t cols) {
  GfMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = Gf256::Pow(static_cast<std::uint8_t>(r + 1),
                              static_cast<std::uint32_t>(c));
    }
  }
  return m;
}

GfMatrix GfMatrix::Multiply(const GfMatrix& other) const {
  GfMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      std::uint8_t a = at(r, k);
      if (!a) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) =
            Gf256::Add(out.at(r, c), Gf256::Mul(a, other.at(k, c)));
      }
    }
  }
  return out;
}

Result<GfMatrix> GfMatrix::Inverted() const {
  if (rows_ != cols_) {
    return Status(StatusCode::kInvalidArgument, "not square");
  }
  std::size_t n = rows_;
  GfMatrix work = *this;
  GfMatrix inv = Identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot: find a row with nonzero entry in this column.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) {
      return Status(StatusCode::kInvalidArgument, "singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.at(pivot, c), work.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    std::uint8_t d = Gf256::Inv(work.at(col, col));
    for (std::size_t c = 0; c < n; ++c) {
      work.at(col, c) = Gf256::Mul(work.at(col, c), d);
      inv.at(col, c) = Gf256::Mul(inv.at(col, c), d);
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      std::uint8_t f = work.at(r, col);
      if (!f) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work.at(r, c) =
            Gf256::Sub(work.at(r, c), Gf256::Mul(f, work.at(col, c)));
        inv.at(r, c) =
            Gf256::Sub(inv.at(r, c), Gf256::Mul(f, inv.at(col, c)));
      }
    }
  }
  return inv;
}

}  // namespace zht::istore
