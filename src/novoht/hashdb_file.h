// HashDBFile: a KyotoCabinet-HashDB-like baseline — a disk-resident open
// hash table where every lookup hits disk (the paper contrasts this with
// NoVoHT's in-memory residency, Figure 6). On-disk layout:
//
//   [header: magic u64, num_buckets u64]
//   [bucket array: num_buckets × u64 record offsets, 0 = empty]
//   [records: next u64 | klen u32 | vlen u32 | deleted u8 | key | value]...
//
// Put appends a record and rewrites the bucket head; Remove marks the
// record's deleted flag in place; Get walks the bucket chain with preads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "novoht/kv_store.h"

namespace zht {

class HashDBFile final : public KVStore {
 public:
  // Creates or opens the store. num_buckets is fixed at creation (as in
  // KyotoCabinet, where the bucket array is sized up front).
  static Result<std::unique_ptr<HashDBFile>> Open(const std::string& path,
                                                  std::uint64_t num_buckets);

  ~HashDBFile() override;

  HashDBFile(const HashDBFile&) = delete;
  HashDBFile& operator=(const HashDBFile&) = delete;

  Status Put(std::string_view key, std::string_view value) override;
  Result<std::string> Get(std::string_view key) override;
  Status Remove(std::string_view key) override;

  std::uint64_t Size() const override { return live_records_; }
  void ForEach(const std::function<void(std::string_view, std::string_view)>&
                   fn) const override;

  bool persistent() const override { return true; }

 private:
  HashDBFile(int fd, std::string path, std::uint64_t num_buckets,
             std::uint64_t file_size, std::uint64_t live);

  std::uint64_t BucketOffset(std::string_view key) const;
  Result<std::uint64_t> ReadU64(std::uint64_t offset) const;
  Status WriteU64(std::uint64_t offset, std::uint64_t value);

  struct RecordHeader {
    std::uint64_t next;
    std::uint32_t klen;
    std::uint32_t vlen;
    std::uint8_t deleted;
  };
  static constexpr std::size_t kRecordHeaderBytes = 8 + 4 + 4 + 1;

  Result<RecordHeader> ReadRecordHeader(std::uint64_t offset) const;

  int fd_;
  std::string path_;
  std::uint64_t num_buckets_;
  std::uint64_t file_size_;
  std::uint64_t live_records_ = 0;
};

}  // namespace zht
