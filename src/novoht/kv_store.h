// KVStore: the storage interface a ZHT partition is built on. NoVoHT is the
// production implementation; the disk-resident baselines exist to reproduce
// the paper's Figure 6 comparison (NoVoHT vs KyotoCabinet vs BerkeleyDB vs
// std::unordered_map).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace zht {

// How a persistent store makes acked mutations crash-safe.
enum class DurabilityMode : std::uint8_t {
  // Mutations are acked once appended to the OS page cache; a crash may
  // lose acked ops (the seed behaviour, fastest).
  kNone = 0,
  // Mutations enqueue a commit sequence number; a dedicated flusher thread
  // fdatasyncs the log and one sync covers every writer in the window.
  kGroupCommit = 1,
  // One fdatasync per mutation (strongest, serializes the write path).
  kEveryOp = 2,
};

inline const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kNone: return "none";
    case DurabilityMode::kGroupCommit: return "group_commit";
    case DurabilityMode::kEveryOp: return "every_op";
  }
  return "unknown";
}

// Durability observability exported by stores that sync a log. Histograms
// use the shared log-linear bucket layout so callers can Merge() across
// partition stores.
struct StoreDurabilityMetrics {
  HistogramData group_commit_batch;  // mutations covered per group fsync
  HistogramData fsync_micros;        // wall time of each log fsync
  std::uint64_t fsync_errors = 0;    // failed fsyncs (store goes read-only)
  std::uint64_t group_commits = 0;   // fsyncs issued by the flusher
};

class KVStore {
 public:
  virtual ~KVStore() = default;

  // Insert or overwrite (ZHT inserts overwrite, matching the paper's API).
  virtual Status Put(std::string_view key, std::string_view value) = 0;

  virtual Result<std::string> Get(std::string_view key) = 0;

  virtual Status Remove(std::string_view key) = 0;

  // Appends to the existing value (creating the key if absent). Stores that
  // cannot support it return kNotSupported; ZHT requires it (§III.I).
  virtual Status Append(std::string_view key, std::string_view value) {
    (void)key;
    (void)value;
    return Status(StatusCode::kNotSupported, "append not supported");
  }

  // Drops every pair (and, for persistent stores, truncates the on-disk
  // log) so a rebuild stream lands on a genuinely empty store — re-opening
  // the same path would otherwise resurrect stale recovered state. The
  // default adapts stores without a faster path.
  virtual Status Clear() {
    std::vector<std::string> keys;
    ForEach([&keys](std::string_view key, std::string_view) {
      keys.emplace_back(key);
    });
    for (const std::string& key : keys) {
      Status status = Remove(key);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

  virtual std::uint64_t Size() const = 0;

  // Visits every live pair (used for partition migration and checkpointing).
  // The callback must not mutate the store.
  virtual void ForEach(
      const std::function<void(std::string_view key, std::string_view value)>&
          fn) const = 0;

  virtual bool persistent() const { return false; }
  virtual bool supports_append() const { return false; }

  // Group-commit handshake. A store with an asynchronous commit pipeline
  // returns, from last_commit_token(), a token covering every mutation it
  // has accepted so far; the mutation is durable once WaitDurable(token)
  // returns Ok. Callers capture the token under the same lock that ordered
  // the mutation and may wait after releasing it. Stores without a pipeline
  // (in-memory, or sync-on-every-op) return 0, and WaitDurable(0) is a
  // no-op, so the sequence "mutate; token = last_commit_token();
  // WaitDurable(token)" is correct against any store.
  virtual std::uint64_t last_commit_token() const { return 0; }
  virtual Status WaitDurable(std::uint64_t token) {
    (void)token;
    return Status::Ok();
  }

  // Asynchronous form of WaitDurable: invokes `done` exactly once, when the
  // token's mutations are durable (or doomed). Stores with a commit
  // pipeline park the callback on their flusher so the caller's thread —
  // typically a reactor draining its shard mailbox — is never blocked; the
  // callback may therefore run on the flusher thread. The default adapts
  // the blocking wait for stores without a pipeline, where WaitDurable
  // returns immediately anyway.
  virtual void NotifyDurable(std::uint64_t token,
                             std::function<void(Status)> done) {
    done(WaitDurable(token));
  }

  // Fills `out` with durability counters/histograms; returns false when the
  // store records none (callers skip it when aggregating).
  virtual bool durability_metrics(StoreDurabilityMetrics* out) const {
    (void)out;
    return false;
  }
};

}  // namespace zht
