// KVStore: the storage interface a ZHT partition is built on. NoVoHT is the
// production implementation; the disk-resident baselines exist to reproduce
// the paper's Figure 6 comparison (NoVoHT vs KyotoCabinet vs BerkeleyDB vs
// std::unordered_map).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace zht {

class KVStore {
 public:
  virtual ~KVStore() = default;

  // Insert or overwrite (ZHT inserts overwrite, matching the paper's API).
  virtual Status Put(std::string_view key, std::string_view value) = 0;

  virtual Result<std::string> Get(std::string_view key) = 0;

  virtual Status Remove(std::string_view key) = 0;

  // Appends to the existing value (creating the key if absent). Stores that
  // cannot support it return kNotSupported; ZHT requires it (§III.I).
  virtual Status Append(std::string_view key, std::string_view value) {
    (void)key;
    (void)value;
    return Status(StatusCode::kNotSupported, "append not supported");
  }

  virtual std::uint64_t Size() const = 0;

  // Visits every live pair (used for partition migration and checkpointing).
  // The callback must not mutate the store.
  virtual void ForEach(
      const std::function<void(std::string_view key, std::string_view value)>&
          fn) const = 0;

  virtual bool persistent() const { return false; }
  virtual bool supports_append() const { return false; }
};

}  // namespace zht
