#include "novoht/btree_db.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace zht {
namespace {

constexpr std::uint64_t kMagic = 0x5a48544254524545ull;  // "ZHTBTREE"
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;

void EncodeU64(std::uint64_t v, char* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
std::uint64_t DecodeU64(const char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[i]))
         << (8 * i);
  }
  return v;
}
void EncodeU32(std::uint32_t v, char* out) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
std::uint32_t DecodeU32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[i]))
         << (8 * i);
  }
  return v;
}

Status PWriteAll(int fd, std::uint64_t offset, std::string_view data) {
  std::size_t done = 0;
  while (done < data.size()) {
    ssize_t r = ::pwrite(fd, data.data() + done, data.size() - done,
                         static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal, "btree pwrite failed");
    }
    done += static_cast<std::size_t>(r);
  }
  return Status::Ok();
}

Result<std::string> PReadAll(int fd, std::uint64_t offset, std::size_t n) {
  std::string out(n, '\0');
  std::size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, out.data() + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal, "btree pread failed");
    }
    if (r == 0) return Status(StatusCode::kCorruption, "btree short read");
    done += static_cast<std::size_t>(r);
  }
  return out;
}

}  // namespace

BTreeDB::BTreeDB(BTreeDBOptions options) : options_(std::move(options)) {}

BTreeDB::~BTreeDB() {
  if (fd_ >= 0) {
    WriteHeader();  // persist root/next_page/entries
    ::close(fd_);
  }
}

Result<std::unique_ptr<BTreeDB>> BTreeDB::Open(const BTreeDBOptions& options) {
  if (options.page_size < 256) {
    return Status(StatusCode::kInvalidArgument, "page_size too small");
  }
  std::unique_ptr<BTreeDB> db(new BTreeDB(options));
  db->fd_ = ::open(options.path.c_str(), O_RDWR | O_CREAT, 0644);
  if (db->fd_ < 0) {
    return Status(StatusCode::kInternal, "cannot open " + options.path);
  }
  off_t end = ::lseek(db->fd_, 0, SEEK_END);
  Status s = db->Bootstrap(end == 0);
  if (!s.ok()) return s;
  return db;
}

Status BTreeDB::Bootstrap(bool fresh) {
  if (fresh) {
    root_ = 1;
    next_page_ = 2;
    entries_ = 0;
    Status s = WriteHeader();
    if (!s.ok()) return s;
    Node root;  // empty leaf
    return Store(root_, root);
  }
  auto header = PReadAll(fd_, 0, kHeaderBytes);
  if (!header.ok()) return header.status();
  if (DecodeU64(header->data()) != kMagic) {
    return Status(StatusCode::kCorruption, "bad btree magic");
  }
  root_ = DecodeU32(header->data() + 8);
  next_page_ = DecodeU32(header->data() + 12);
  entries_ = DecodeU64(header->data() + 16);
  return Status::Ok();
}

Status BTreeDB::WriteHeader() {
  std::string header(kHeaderBytes, '\0');
  EncodeU64(kMagic, header.data());
  EncodeU32(root_, header.data() + 8);
  EncodeU32(next_page_, header.data() + 12);
  EncodeU64(entries_, header.data() + 16);
  return PWriteAll(fd_, 0, header);
}

std::string BTreeDB::SerializeNode(const Node& node) {
  std::string out;
  out.push_back(node.leaf ? 1 : 0);
  char buf[4];
  EncodeU32(static_cast<std::uint32_t>(node.keys.size()), buf);
  out.append(buf, 4);
  if (node.leaf) {
    for (std::size_t i = 0; i < node.keys.size(); ++i) {
      EncodeU32(static_cast<std::uint32_t>(node.keys[i].size()), buf);
      out.append(buf, 4);
      EncodeU32(static_cast<std::uint32_t>(node.values[i].size()), buf);
      out.append(buf, 4);
      out += node.keys[i];
      out += node.values[i];
    }
  } else {
    for (PageId child : node.children) {
      EncodeU32(child, buf);
      out.append(buf, 4);
    }
    for (const auto& key : node.keys) {
      EncodeU32(static_cast<std::uint32_t>(key.size()), buf);
      out.append(buf, 4);
      out += key;
    }
  }
  return out;
}

Result<BTreeDB::Node> BTreeDB::ParseNode(std::string_view data) {
  if (data.size() < 5) return Status(StatusCode::kCorruption, "tiny page");
  Node node;
  node.leaf = data[0] != 0;
  std::uint32_t nkeys = DecodeU32(data.data() + 1);
  std::size_t pos = 5;
  auto need = [&](std::size_t n) { return pos + n <= data.size(); };
  if (node.leaf) {
    node.keys.reserve(nkeys);
    node.values.reserve(nkeys);
    for (std::uint32_t i = 0; i < nkeys; ++i) {
      if (!need(8)) return Status(StatusCode::kCorruption, "leaf header");
      std::uint32_t klen = DecodeU32(data.data() + pos);
      std::uint32_t vlen = DecodeU32(data.data() + pos + 4);
      pos += 8;
      if (!need(klen + vlen)) {
        return Status(StatusCode::kCorruption, "leaf payload");
      }
      node.keys.emplace_back(data.substr(pos, klen));
      node.values.emplace_back(data.substr(pos + klen, vlen));
      pos += klen + vlen;
    }
  } else {
    node.children.reserve(nkeys + 1);
    for (std::uint32_t i = 0; i <= nkeys; ++i) {
      if (!need(4)) return Status(StatusCode::kCorruption, "children");
      node.children.push_back(DecodeU32(data.data() + pos));
      pos += 4;
    }
    node.keys.reserve(nkeys);
    for (std::uint32_t i = 0; i < nkeys; ++i) {
      if (!need(4)) return Status(StatusCode::kCorruption, "key header");
      std::uint32_t klen = DecodeU32(data.data() + pos);
      pos += 4;
      if (!need(klen)) return Status(StatusCode::kCorruption, "key payload");
      node.keys.emplace_back(data.substr(pos, klen));
      pos += klen;
    }
  }
  return node;
}

std::size_t BTreeDB::SerializedSize(const Node& node) const {
  std::size_t size = 5;
  if (node.leaf) {
    for (std::size_t i = 0; i < node.keys.size(); ++i) {
      size += 8 + node.keys[i].size() + node.values[i].size();
    }
  } else {
    size += node.children.size() * 4;
    for (const auto& key : node.keys) size += 4 + key.size();
  }
  return size;
}

Result<BTreeDB::Node*> BTreeDB::Fetch(PageId id) const {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    ++cache_hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return &it->second.node;
  }
  ++cache_misses_;
  auto raw = PReadAll(fd_, static_cast<std::uint64_t>(id) * options_.page_size,
                      options_.page_size);
  if (!raw.ok()) return raw.status();
  auto node = ParseNode(*raw);
  if (!node.ok()) return node.status();
  CacheInsert(id, std::move(*node));
  return &cache_.find(id)->second.node;
}

void BTreeDB::CacheInsert(PageId id, Node node) const {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    it->second.node = std::move(node);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (cache_.size() >= options_.cache_pages) Evict();
  lru_.push_front(id);
  cache_.emplace(id, CacheEntry{std::move(node), lru_.begin()});
}

void BTreeDB::Evict() const {
  if (lru_.empty()) return;
  PageId victim = lru_.back();
  lru_.pop_back();
  cache_.erase(victim);
}

Status BTreeDB::Store(PageId id, const Node& node) {
  std::string data = SerializeNode(node);
  if (data.size() > options_.page_size) {
    return Status(StatusCode::kCapacity, "node exceeds page");
  }
  data.resize(options_.page_size, '\0');
  Status s = PWriteAll(
      fd_, static_cast<std::uint64_t>(id) * options_.page_size, data);
  if (!s.ok()) return s;
  CacheInsert(id, node);
  return Status::Ok();
}

BTreeDB::PageId BTreeDB::Allocate() { return next_page_++; }

Status BTreeDB::InsertInto(PageId id, std::string_view key,
                           std::string_view value, bool* grew,
                           std::string* split_key, PageId* split_page,
                           bool* inserted_new) {
  auto fetched = Fetch(id);
  if (!fetched.ok()) return fetched.status();
  Node node = **fetched;  // work on a copy; cache entries may be evicted

  *grew = false;
  if (node.leaf) {
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(),
                               std::string(key));
    std::size_t idx = static_cast<std::size_t>(it - node.keys.begin());
    if (it != node.keys.end() && *it == key) {
      node.values[idx].assign(value);
      *inserted_new = false;
    } else {
      node.keys.insert(it, std::string(key));
      node.values.insert(node.values.begin() + static_cast<std::ptrdiff_t>(idx),
                         std::string(value));
      *inserted_new = true;
    }
    if (SerializedSize(node) > options_.page_size && node.keys.size() >= 2) {
      std::size_t mid = node.keys.size() / 2;
      Node right;
      right.leaf = true;
      right.keys.assign(node.keys.begin() + static_cast<std::ptrdiff_t>(mid),
                        node.keys.end());
      right.values.assign(
          node.values.begin() + static_cast<std::ptrdiff_t>(mid),
          node.values.end());
      node.keys.resize(mid);
      node.values.resize(mid);
      PageId right_id = Allocate();
      *split_key = right.keys.front();
      *split_page = right_id;
      *grew = true;
      Status s = Store(right_id, right);
      if (!s.ok()) return s;
    } else if (SerializedSize(node) > options_.page_size) {
      return Status(StatusCode::kCapacity, "record too large for page");
    }
    return Store(id, node);
  }

  // Internal node: child i covers keys < keys[i] (upper_bound convention).
  std::size_t child_index = static_cast<std::size_t>(
      std::upper_bound(node.keys.begin(), node.keys.end(), std::string(key)) -
      node.keys.begin());
  PageId child = node.children[child_index];
  bool child_grew = false;
  std::string child_split_key;
  PageId child_split_page = 0;
  Status s = InsertInto(child, key, value, &child_grew, &child_split_key,
                        &child_split_page, inserted_new);
  if (!s.ok()) return s;
  if (!child_grew) return Status::Ok();

  node.keys.insert(node.keys.begin() + static_cast<std::ptrdiff_t>(child_index),
                   child_split_key);
  node.children.insert(
      node.children.begin() + static_cast<std::ptrdiff_t>(child_index) + 1,
      child_split_page);

  if (SerializedSize(node) > options_.page_size && node.keys.size() >= 3) {
    std::size_t mid = node.keys.size() / 2;
    Node right;
    right.leaf = false;
    *split_key = node.keys[mid];  // promoted, kept in neither half
    right.keys.assign(node.keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                      node.keys.end());
    right.children.assign(
        node.children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
        node.children.end());
    node.keys.resize(mid);
    node.children.resize(mid + 1);
    PageId right_id = Allocate();
    *split_page = right_id;
    *grew = true;
    s = Store(right_id, right);
    if (!s.ok()) return s;
  }
  return Store(id, node);
}

Status BTreeDB::Put(std::string_view key, std::string_view value) {
  if (key.size() + value.size() + 64 > options_.page_size / 2) {
    return Status(StatusCode::kCapacity, "entry too large for btree page");
  }
  bool grew = false;
  bool inserted_new = false;
  std::string split_key;
  PageId split_page = 0;
  Status s = InsertInto(root_, key, value, &grew, &split_key, &split_page,
                        &inserted_new);
  if (!s.ok()) return s;
  if (grew) {
    Node new_root;
    new_root.leaf = false;
    new_root.keys.push_back(split_key);
    new_root.children.push_back(root_);
    new_root.children.push_back(split_page);
    PageId new_root_id = Allocate();
    s = Store(new_root_id, new_root);
    if (!s.ok()) return s;
    root_ = new_root_id;
  }
  if (inserted_new) ++entries_;
  return Status::Ok();
}

Result<std::string> BTreeDB::Get(std::string_view key) {
  PageId id = root_;
  for (;;) {
    auto fetched = Fetch(id);
    if (!fetched.ok()) return fetched.status();
    Node* node = *fetched;
    if (node->leaf) {
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(),
                                 std::string(key));
      if (it != node->keys.end() && *it == key) {
        return node->values[static_cast<std::size_t>(it - node->keys.begin())];
      }
      return Status(StatusCode::kNotFound);
    }
    std::size_t child_index = static_cast<std::size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(),
                         std::string(key)) -
        node->keys.begin());
    id = node->children[child_index];
  }
}

Status BTreeDB::Remove(std::string_view key) {
  // Descend to the leaf; erase in place (lazy deletion, no rebalancing).
  PageId id = root_;
  for (;;) {
    auto fetched = Fetch(id);
    if (!fetched.ok()) return fetched.status();
    Node node = **fetched;
    if (node.leaf) {
      auto it = std::lower_bound(node.keys.begin(), node.keys.end(),
                                 std::string(key));
      if (it == node.keys.end() || *it != key) {
        return Status(StatusCode::kNotFound);
      }
      std::size_t idx = static_cast<std::size_t>(it - node.keys.begin());
      node.keys.erase(it);
      node.values.erase(node.values.begin() + static_cast<std::ptrdiff_t>(idx));
      Status s = Store(id, node);
      if (!s.ok()) return s;
      --entries_;
      return Status::Ok();
    }
    std::size_t child_index = static_cast<std::size_t>(
        std::upper_bound(node.keys.begin(), node.keys.end(),
                         std::string(key)) -
        node.keys.begin());
    id = node.children[child_index];
  }
}

void BTreeDB::ForEachFrom(
    PageId id,
    const std::function<void(std::string_view, std::string_view)>& fn) const {
  auto fetched = Fetch(id);
  if (!fetched.ok()) return;
  Node node = **fetched;  // copy: recursion would thrash the cache pointer
  if (node.leaf) {
    for (std::size_t i = 0; i < node.keys.size(); ++i) {
      fn(node.keys[i], node.values[i]);
    }
    return;
  }
  for (PageId child : node.children) ForEachFrom(child, fn);
}

void BTreeDB::ForEach(
    const std::function<void(std::string_view, std::string_view)>& fn) const {
  ForEachFrom(root_, fn);
}

}  // namespace zht
