#include "novoht/novoht.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/clock.h"
#include "common/crc32.h"
#include "common/log.h"
#include "hashing/hash_functions.h"
#include "serialize/wire.h"

namespace zht {
namespace {

// Log record types.
constexpr std::uint8_t kRecPut = 1;
constexpr std::uint8_t kRecRemove = 2;
constexpr std::uint8_t kRecAppend = 3;

std::size_t VarintLen(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Record layout: [crc32:4 LE][type:1][klen varint][vlen varint][key][value]
// crc covers everything after the crc field. *value_offset_in_record gets
// the byte index of the value payload within the record.
std::string EncodeRecord(std::uint8_t type, std::string_view key,
                         std::string_view value,
                         std::size_t* value_offset_in_record = nullptr) {
  std::string body;
  wire::Writer w(&body);
  body.push_back(static_cast<char>(type));
  w.PutVarint(key.size());
  w.PutVarint(value.size());
  w.PutBytes(key);
  w.PutBytes(value);

  if (value_offset_in_record) {
    *value_offset_in_record = 4 + 1 + VarintLen(key.size()) +
                              VarintLen(value.size()) + key.size();
  }
  std::uint32_t crc = Crc32c(body);
  std::string out;
  out.reserve(body.size() + 4);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  out += body;
  return out;
}

Status WriteAll(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal,
                    std::string("log write failed: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

bool PreadExact(int fd, std::uint64_t offset, char* out, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, out + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    done += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

NoVoHT::NoVoHT(NoVoHTOptions options) : options_(std::move(options)) {
  std::uint64_t buckets =
      options_.initial_buckets ? options_.initial_buckets : 1;
  buckets_.assign(buckets, nullptr);
}

Result<std::unique_ptr<NoVoHT>> NoVoHT::Open(const NoVoHTOptions& options) {
  if (options.max_resident_values != 0 && options.path.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "max_resident_values needs a persistence log");
  }
  std::unique_ptr<NoVoHT> store(new NoVoHT(options));
  if (!options.path.empty()) {
    Status status = store->RecoverFromLog();
    if (!status.ok()) return status;
    store->log_fd_ =
        ::open(options.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (store->log_fd_ < 0) {
      return Status(StatusCode::kInternal,
                    "cannot open log: " + options.path);
    }
    store->read_fd_ = ::open(options.path.c_str(), O_RDONLY);
    if (store->read_fd_ < 0) {
      return Status(StatusCode::kInternal,
                    "cannot open log for reads: " + options.path);
    }
    store->EnforceResidencyCap();
    if (options.durability == DurabilityMode::kGroupCommit) {
      store->flusher_ = std::thread([s = store.get()] { s->FlusherLoop(); });
    }
  }
  return store;
}

NoVoHT::~NoVoHT() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(commit_mu_);
      stop_flusher_ = true;
    }
    flusher_cv_.notify_all();
    flusher_.join();
    // The flusher syncs outstanding commits before exiting, so any waiter
    // still parked resolves against the final durable_seq_ / failure state.
    std::vector<DurableWaiter> leftovers;
    Status outcome = Status::Ok();
    {
      std::lock_guard<std::mutex> lock(commit_mu_);
      leftovers.swap(durable_waiters_);
      if (sync_failed_) {
        outcome = Status(StatusCode::kInternal,
                         "log fsync failed; store is read-only");
      }
    }
    for (DurableWaiter& waiter : leftovers) waiter.done(outcome);
  }
  if (log_fd_ >= 0) ::close(log_fd_);
  if (read_fd_ >= 0) ::close(read_fd_);
  for (Node* head : buckets_) {
    while (head) {
      Node* next = head->next;
      delete head;
      head = next;
    }
  }
}

std::uint64_t NoVoHT::RecordBytes(std::string_view key,
                                  std::string_view value) {
  // Close enough for GC accounting: header ~8 bytes + payload.
  return 8 + key.size() + value.size();
}

std::uint64_t NoVoHT::BucketIndex(std::string_view key) const {
  return Fnv1a64(key) % buckets_.size();
}

NoVoHT::Node* NoVoHT::FindNode(std::string_view key) const {
  for (Node* node = buckets_[BucketIndex(key)]; node; node = node->next) {
    if (node->key == key) return node;
  }
  return nullptr;
}

std::uint64_t NoVoHT::ApplyPut(std::string_view key, std::string_view value) {
  Node* node = FindNode(key);
  if (node) {
    std::uint64_t dead =
        RecordBytes(node->key, node->resident
                                   ? std::string_view(node->value)
                                   : std::string_view());
    if (!node->resident) {
      node->resident = true;
      ++resident_values_;
    }
    node->value.assign(value);
    node->value_len = static_cast<std::uint32_t>(value.size());
    return dead;
  }
  auto* fresh = new Node{std::string(key), std::string(value), nullptr,
                         0, static_cast<std::uint32_t>(value.size()),
                         /*resident=*/true, /*offset_valid=*/false};
  std::uint64_t index = BucketIndex(key);
  fresh->next = buckets_[index];
  buckets_[index] = fresh;
  ++entries_;
  ++resident_values_;
  ResizeIfNeeded();
  return 0;
}

std::uint64_t NoVoHT::ApplyRemove(std::string_view key, bool* found) {
  std::uint64_t index = BucketIndex(key);
  Node** link = &buckets_[index];
  while (*link) {
    Node* node = *link;
    if (node->key == key) {
      std::uint64_t dead = RecordBytes(node->key, node->value) +
                           RecordBytes(key, "");  // the remove record itself
      if (node->resident) --resident_values_;
      *link = node->next;
      delete node;
      --entries_;
      *found = true;
      return dead;
    }
    link = &node->next;
  }
  *found = false;
  return 0;
}

void NoVoHT::ApplyAppend(std::string_view key, std::string_view value) {
  Node* node = FindNode(key);
  if (node) {
    node->value.append(value);
    node->value_len = static_cast<std::uint32_t>(node->value.size());
    node->offset_valid = false;  // the full value is no longer contiguous
    return;
  }
  ApplyPut(key, value);
  if (Node* fresh = FindNode(key)) fresh->offset_valid = false;
}

void NoVoHT::ResizeIfNeeded() {
  double load = static_cast<double>(entries_) /
                static_cast<double>(buckets_.size());
  if (load <= options_.max_load_factor) return;
  std::uint64_t next = static_cast<std::uint64_t>(
      static_cast<double>(buckets_.size()) * options_.resize_multiplier);
  if (next <= buckets_.size()) next = buckets_.size() + 1;
  if (options_.max_buckets && next > options_.max_buckets) {
    next = options_.max_buckets;
    if (next <= buckets_.size()) return;  // at the cap; chains grow instead
  }
  RehashInto(next);
  ++resizes_;
}

void NoVoHT::RehashInto(std::uint64_t new_bucket_count) {
  std::vector<Node*> old = std::move(buckets_);
  buckets_.assign(new_bucket_count, nullptr);
  for (Node* head : old) {
    while (head) {
      Node* next = head->next;
      std::uint64_t index = BucketIndex(head->key);
      head->next = buckets_[index];
      buckets_[index] = head;
      head = next;
    }
  }
}

bool NoVoHT::ValidRecordFollows(int fd, std::uint64_t from,
                                std::uint64_t file_size) {
  // Brute-force resync: try every byte offset as a candidate record start
  // and accept the first whose CRC checks out over a complete body. Only
  // runs on recovery's parse-failure path, so quadratic cost is fine; a
  // false positive needs a 1-in-2^32 CRC collision per candidate.
  std::string buf;
  for (std::uint64_t q = from; q + 5 <= file_size; ++q) {
    // Header-worth of bytes: crc + type + two max-length varints.
    const std::size_t header_want = static_cast<std::size_t>(
        std::min<std::uint64_t>(file_size - q, 4 + 1 + 10 + 10));
    buf.resize(header_want);
    if (!PreadExact(fd, q, buf.data(), buf.size())) return false;
    const std::uint32_t stored_crc =
        static_cast<std::uint8_t>(buf[0]) |
        static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[1])) << 8 |
        static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[2])) << 16 |
        static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[3])) << 24;
    wire::Reader fields(std::string_view(buf).substr(5));
    std::uint64_t klen = 0, vlen = 0;
    if (!fields.GetVarint(&klen) || !fields.GetVarint(&vlen)) continue;
    const std::uint64_t body_len =
        1 + VarintLen(klen) + VarintLen(vlen) + klen + vlen;
    if (q + 4 + body_len > file_size) continue;
    buf.resize(static_cast<std::size_t>(body_len));
    if (!PreadExact(fd, q + 4, buf.data(), buf.size())) return false;
    if (Crc32c(buf) == stored_crc) return true;
  }
  return false;
}

Status NoVoHT::RecoverFromLog() {
  int fd = ::open(options_.path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::Ok();  // fresh store
    return Status(StatusCode::kInternal, "cannot read log: " + options_.path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status(StatusCode::kInternal, "cannot stat log: " + options_.path);
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  // Replay through a bounded sliding window covering bytes
  // [window_start, window_start + window.size()) of the file, so recovery
  // memory stays O(recover_buffer_bytes) regardless of log size. The window
  // grows past the cap only for a single over-sized record.
  const std::uint64_t window_cap =
      std::max<std::uint64_t>(options_.recover_buffer_bytes, 4096);
  std::string window;
  std::uint64_t window_start = 0;
  auto ensure = [&](std::uint64_t pos, std::uint64_t end) -> bool {
    if (pos > window_start) {
      window.erase(0, static_cast<std::size_t>(pos - window_start));
      window_start = pos;
    }
    end = std::min(std::max(end, pos + window_cap), file_size);
    while (window_start + window.size() < end) {
      char buf[1 << 16];
      const std::uint64_t at = window_start + window.size();
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(sizeof(buf), end - at));
      const ssize_t n = ::pread(fd, buf, want, static_cast<off_t>(at));
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // file shrank under us
      window.append(buf, static_cast<std::size_t>(n));
    }
    return true;
  };

  std::uint64_t pos = 0;
  std::uint64_t valid_end = 0;
  Status failure;
  while (pos + 5 <= file_size) {
    if (!ensure(pos, pos + 4 + 1 + 10 + 10)) {
      failure = Status(StatusCode::kInternal, "log read failed in recovery");
      break;
    }
    const char* base = window.data() + (pos - window_start);
    const std::size_t avail = static_cast<std::size_t>(
        window.size() - (pos - window_start));
    std::uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i) {
      stored_crc |= static_cast<std::uint32_t>(
                        static_cast<std::uint8_t>(base[i]))
                    << (8 * i);
    }
    wire::Reader fields(std::string_view(base + 5, avail - 5));
    std::uint64_t klen = 0, vlen = 0;
    const bool parsed = fields.GetVarint(&klen) && fields.GetVarint(&vlen);
    const std::uint64_t record_len =
        parsed ? 4 + 1 + VarintLen(klen) + VarintLen(vlen) + klen + vlen : 0;
    if (!parsed || pos + record_len > file_size) {
      // The tail does not hold one whole well-formed record. A crash mid-
      // append looks exactly like this (torn tail: trim it) — but so does a
      // damaged length field mid-log, which used to silently discard every
      // later record. Resync: if any complete CRC-valid record follows,
      // this is corruption, not a torn tail.
      if (ValidRecordFollows(fd, pos + 1, file_size)) {
        failure = Status(StatusCode::kCorruption,
                         "log corrupt at offset " + std::to_string(pos));
      }
      break;
    }
    if (!ensure(pos, pos + record_len)) {
      failure = Status(StatusCode::kInternal, "log read failed in recovery");
      break;
    }
    base = window.data() + (pos - window_start);
    const std::string_view body(base + 4,
                                static_cast<std::size_t>(record_len - 4));
    if (Crc32c(body) != stored_crc) {
      // Torn tail from a crash is expected: truncate. Corruption mid-log
      // (more records follow) is an error.
      if (pos + record_len < file_size) {
        failure = Status(StatusCode::kCorruption,
                         "log corrupt at offset " + std::to_string(pos));
      }
      break;
    }

    const std::uint8_t type = static_cast<std::uint8_t>(base[4]);
    const std::size_t header = 1 + VarintLen(klen) + VarintLen(vlen);
    const std::string_view key(base + 4 + header,
                               static_cast<std::size_t>(klen));
    const std::string_view value(base + 4 + header + klen,
                                 static_cast<std::size_t>(vlen));
    // Value payload offset within the file for residency bookkeeping.
    const std::uint64_t value_offset = pos + 4 + header + klen;

    switch (type) {
      case kRecPut: {
        dead_bytes_ += ApplyPut(key, value);
        if (Node* node = FindNode(key)) {
          node->log_offset = value_offset;
          node->offset_valid = true;
        }
        break;
      }
      case kRecRemove: {
        bool found = false;
        dead_bytes_ += ApplyRemove(key, &found);
        break;
      }
      case kRecAppend:
        ApplyAppend(key, value);
        break;
      default:
        failure = Status(StatusCode::kCorruption,
                         "unknown log record type " + std::to_string(type));
        break;
    }
    if (!failure.ok()) break;
    ++recovered_records_;
    pos += record_len;
    valid_end = pos;
    log_bytes_ += record_len;
  }
  ::close(fd);
  if (!failure.ok()) return failure;

  if (valid_end < file_size) {
    // Trim torn tail so future appends start at a clean boundary.
    if (::truncate(options_.path.c_str(),
                   static_cast<off_t>(valid_end)) != 0) {
      return Status(StatusCode::kInternal, "cannot truncate torn log tail");
    }
    ZHT_WARN << "NoVoHT: trimmed torn log tail at byte " << valid_end;
  }
  return Status::Ok();
}

int NoVoHT::SyncFd(int fd) const {
  if (options_.fsync_hook) return options_.fsync_hook(fd);
  return ::fdatasync(fd);
}

Status NoVoHT::FailSync(const char* what) {
  fsync_errors_.fetch_add(1, std::memory_order_relaxed);
  read_only_.store(true, std::memory_order_relaxed);
  return Status(StatusCode::kInternal,
                std::string(what) +
                    " failed; page-cache state is unknowable, store is now "
                    "read-only");
}

Status NoVoHT::AppendLogRecord(std::uint8_t type, std::string_view key,
                               std::string_view value,
                               std::uint64_t* value_offset,
                               std::uint64_t* commit_token) {
  if (commit_token) *commit_token = 0;
  if (log_fd_ < 0) {
    if (value_offset) *value_offset = 0;
    return Status::Ok();
  }
  std::size_t offset_in_record = 0;
  std::string record = EncodeRecord(type, key, value, &offset_in_record);
  Status status = WriteAll(log_fd_, record);
  if (!status.ok()) {
    // A short write can leave a partial record in the page cache; every
    // later append would then land after garbage.
    read_only_.store(true, std::memory_order_relaxed);
    return status;
  }
  if (value_offset) *value_offset = log_bytes_ + offset_in_record;
  log_bytes_ += record.size();
  switch (options_.durability) {
    case DurabilityMode::kNone:
      break;
    case DurabilityMode::kEveryOp: {
      const Stopwatch watch(SystemClock::Instance());
      if (SyncFd(log_fd_) != 0) return FailSync("log fsync");
      fsync_micros_.Record(watch.Elapsed() / kNanosPerMicro);
      break;
    }
    case DurabilityMode::kGroupCommit: {
      {
        std::lock_guard<std::mutex> commit_lock(commit_mu_);
        ++appended_seq_;
        ++pending_ops_;
        if (commit_token) *commit_token = appended_seq_;
      }
      // Notify outside the lock: a sleeping flusher wakes straight into an
      // uncontended commit_mu_.
      flusher_cv_.notify_one();
      break;
    }
  }
  return Status::Ok();
}

void NoVoHT::FlusherLoop() {
  std::unique_lock<std::mutex> lock(commit_mu_);
  for (;;) {
    flusher_cv_.wait(lock, [&] {
      return stop_flusher_ || (!sync_failed_ && appended_seq_ > durable_seq_);
    });
    if (sync_failed_ || appended_seq_ <= durable_seq_) {
      if (stop_flusher_) return;
      continue;
    }
    // Commit window: give concurrent writers a chance to join this fsync.
    if (options_.max_commit_latency > 0 && !stop_flusher_) {
      flusher_cv_.wait_for(
          lock, std::chrono::nanoseconds(options_.max_commit_latency),
          [&] { return stop_flusher_; });
    }
    const std::uint64_t target = appended_seq_;
    const std::uint64_t batch = pending_ops_;
    pending_ops_ = 0;
    // log_fd_ is stable here: compaction drains the pipeline (under
    // commit_mu_) before swapping fds.
    const int fd = log_fd_;
    lock.unlock();
    const Stopwatch watch(SystemClock::Instance());
    const int rc = SyncFd(fd);
    const Nanos elapsed = watch.Elapsed();
    lock.lock();
    fsync_micros_.Record(elapsed / kNanosPerMicro);
    if (rc != 0) {
      fsync_errors_.fetch_add(1, std::memory_order_relaxed);
      read_only_.store(true, std::memory_order_relaxed);
      sync_failed_ = true;
    } else {
      durable_seq_ = target;
      group_commit_batch_.Record(static_cast<std::int64_t>(batch));
      ++group_commits_;
    }
    const bool stopping = stop_flusher_;
    std::vector<DurableWaiter> ready = TakeReadyWaitersLocked();
    // Notify with the lock released so the (up to batch-many) woken
    // writers reacquire commit_mu_ without contending with this thread.
    lock.unlock();
    commit_cv_.notify_all();
    // Parked asynchronous acks fire here, on the flusher thread, covering
    // everything this fsync made durable (or everything, on failure).
    const Status outcome =
        rc == 0 ? Status::Ok()
                : Status(StatusCode::kInternal,
                         "log fsync failed; store is read-only");
    for (DurableWaiter& waiter : ready) waiter.done(outcome);
    if (stopping) return;
    lock.lock();
  }
}

std::vector<NoVoHT::DurableWaiter> NoVoHT::TakeReadyWaitersLocked() {
  std::vector<DurableWaiter> ready;
  if (durable_waiters_.empty()) return ready;
  if (sync_failed_) {
    ready.swap(durable_waiters_);
    return ready;
  }
  auto split = std::partition(
      durable_waiters_.begin(), durable_waiters_.end(),
      [this](const DurableWaiter& w) { return w.token > durable_seq_; });
  ready.assign(std::make_move_iterator(split),
               std::make_move_iterator(durable_waiters_.end()));
  durable_waiters_.erase(split, durable_waiters_.end());
  return ready;
}

void NoVoHT::NotifyDurable(std::uint64_t token,
                           std::function<void(Status)> done) {
  if (token == 0 || options_.durability != DurabilityMode::kGroupCommit ||
      !flusher_.joinable()) {
    done(Status::Ok());
    return;
  }
  {
    std::unique_lock<std::mutex> lock(commit_mu_);
    if (sync_failed_) {
      lock.unlock();
      done(Status(StatusCode::kInternal,
                  "log fsync failed; store is read-only"));
      return;
    }
    if (durable_seq_ < token) {
      durable_waiters_.push_back({token, std::move(done)});
      return;
    }
  }
  done(Status::Ok());
}

std::uint64_t NoVoHT::last_commit_token() const {
  if (options_.durability != DurabilityMode::kGroupCommit) return 0;
  std::lock_guard<std::mutex> lock(commit_mu_);
  return appended_seq_;
}

Status NoVoHT::WaitDurable(std::uint64_t token) {
  if (token == 0 || options_.durability != DurabilityMode::kGroupCommit ||
      !flusher_.joinable()) {
    return Status::Ok();
  }
  std::unique_lock<std::mutex> lock(commit_mu_);
  commit_cv_.wait(lock, [&] { return durable_seq_ >= token || sync_failed_; });
  if (durable_seq_ >= token) return Status::Ok();
  return Status(StatusCode::kInternal,
                "log fsync failed; store is read-only");
}

Status NoVoHT::MaybeWaitDurable(std::uint64_t token) {
  if (token == 0 || !options_.wait_for_durable) return Status::Ok();
  return WaitDurable(token);
}

Status NoVoHT::DrainCommitsLocked() {
  if (!flusher_.joinable()) return Status::Ok();
  std::unique_lock<std::mutex> lock(commit_mu_);
  flusher_cv_.notify_one();
  commit_cv_.wait(lock,
                  [&] { return durable_seq_ >= appended_seq_ || sync_failed_; });
  if (sync_failed_) {
    return Status(StatusCode::kInternal,
                  "log fsync failed; store is read-only");
  }
  return Status::Ok();
}

bool NoVoHT::durability_metrics(StoreDurabilityMetrics* out) const {
  if (options_.path.empty()) return false;
  out->group_commit_batch = group_commit_batch_.Snapshot();
  out->fsync_micros = fsync_micros_.Snapshot();
  out->fsync_errors = fsync_errors_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    out->group_commits = group_commits_;
  }
  return true;
}

Result<std::string> NoVoHT::LoadValue(const Node& node) const {
  if (node.value_len == 0) return std::string();
  if (read_fd_ < 0) {
    return Status(StatusCode::kInternal, "no log to load evicted value");
  }
  std::string out(node.value_len, '\0');
  std::size_t done = 0;
  while (done < out.size()) {
    ssize_t r = ::pread(read_fd_, out.data() + done, out.size() - done,
                        static_cast<off_t>(node.log_offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal, "pread of evicted value failed");
    }
    if (r == 0) {
      return Status(StatusCode::kCorruption, "evicted value truncated");
    }
    done += static_cast<std::size_t>(r);
  }
  ++disk_reads_;
  return out;
}

Status NoVoHT::EnsureResident(Node* node) {
  if (node->resident) return Status::Ok();
  auto value = LoadValue(*node);
  if (!value.ok()) return value.status();
  node->value = std::move(*value);
  node->resident = true;
  ++resident_values_;
  return Status::Ok();
}

void NoVoHT::MaybeEvict(const Node* keep) {
  if (options_.max_resident_values == 0 || log_fd_ < 0) return;
  std::uint64_t guard = buckets_.size() + 1;
  while (resident_values_ > options_.max_resident_values && guard-- > 0) {
    Node* head = buckets_[evict_cursor_ % buckets_.size()];
    ++evict_cursor_;
    for (Node* node = head; node; node = node->next) {
      if (node == keep || !node->resident) continue;
      if (!node->offset_valid) {
        // Append-dirtied value: re-log the full value so a contiguous copy
        // exists, then evict.
        std::uint64_t offset = 0;
        Status status =
            AppendLogRecord(kRecPut, node->key, node->value, &offset);
        if (!status.ok()) {
          ZHT_WARN << "NoVoHT: cannot re-log for eviction: "
                   << status.ToString();
          continue;
        }
        dead_bytes_ += RecordBytes(node->key, node->value);
        node->log_offset = offset;
        node->offset_valid = true;
      }
      node->value.clear();
      node->value.shrink_to_fit();
      node->resident = false;
      --resident_values_;
      ++evictions_;
      if (resident_values_ <= options_.max_resident_values) return;
    }
  }
}

void NoVoHT::EnforceResidencyCap() {
  std::lock_guard<std::mutex> lock(mu_);
  MaybeEvict(nullptr);
}

Status NoVoHT::Put(std::string_view key, std::string_view value) {
  std::uint64_t commit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (read_only_.load(std::memory_order_relaxed)) {
      return Status(StatusCode::kInternal,
                    "NoVoHT is read-only after a failed fsync");
    }
    if (options_.max_entries && entries_ >= options_.max_entries &&
        FindNode(key) == nullptr) {
      return Status(StatusCode::kCapacity, "NoVoHT entry cap reached");
    }
    std::uint64_t offset = 0;
    Status status = AppendLogRecord(kRecPut, key, value, &offset, &commit);
    if (!status.ok()) return status;
    dead_bytes_ += ApplyPut(key, value);
    Node* node = FindNode(key);
    if (node && log_fd_ >= 0) {
      node->log_offset = offset;
      node->offset_valid = true;
    }
    MaybeEvict(node);
    status = MaybeGc();
    if (!status.ok()) return status;
  }
  // Block for the group fsync after dropping mu_, so concurrent writers can
  // join the same commit window.
  return MaybeWaitDurable(commit);
}

Result<std::string> NoVoHT::Get(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  Node* node = FindNode(key);
  if (!node) return Status(StatusCode::kNotFound);
  if (node->resident) return node->value;
  // Evicted: serve from the log without re-admitting (scans of cold keys
  // must not thrash the resident set).
  return LoadValue(*node);
}

Status NoVoHT::Remove(std::string_view key) {
  std::uint64_t commit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (read_only_.load(std::memory_order_relaxed)) {
      return Status(StatusCode::kInternal,
                    "NoVoHT is read-only after a failed fsync");
    }
    bool found = false;
    // Log first (WAL discipline), then apply; logging a remove of a missing
    // key would pollute the log, so probe first.
    if (FindNode(key) == nullptr) return Status(StatusCode::kNotFound);
    Status status = AppendLogRecord(kRecRemove, key, "", nullptr, &commit);
    if (!status.ok()) return status;
    dead_bytes_ += ApplyRemove(key, &found);
    status = MaybeGc();
    if (!status.ok()) return status;
  }
  return MaybeWaitDurable(commit);
}

Status NoVoHT::Append(std::string_view key, std::string_view value) {
  std::uint64_t commit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (read_only_.load(std::memory_order_relaxed)) {
      return Status(StatusCode::kInternal,
                    "NoVoHT is read-only after a failed fsync");
    }
    if (options_.max_entries && entries_ >= options_.max_entries &&
        FindNode(key) == nullptr) {
      return Status(StatusCode::kCapacity, "NoVoHT entry cap reached");
    }
    Node* node = FindNode(key);
    if (node && !node->resident) {
      Status status = EnsureResident(node);
      if (!status.ok()) return status;
    }
    Status status = AppendLogRecord(kRecAppend, key, value, nullptr, &commit);
    if (!status.ok()) return status;
    ApplyAppend(key, value);
    MaybeEvict(FindNode(key));
    status = MaybeGc();
    if (!status.ok()) return status;
  }
  return MaybeWaitDurable(commit);
}

std::uint64_t NoVoHT::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void NoVoHT::ForEach(
    const std::function<void(std::string_view, std::string_view)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (Node* head : buckets_) {
    for (Node* node = head; node; node = node->next) {
      if (node->resident) {
        fn(node->key, node->value);
      } else {
        auto value = LoadValue(*node);
        fn(node->key, value.ok() ? *value : std::string());
      }
    }
  }
}

Status NoVoHT::MaybeGc() {
  if (log_fd_ < 0) return Status::Ok();
  if (log_bytes_ < options_.gc_min_log_bytes) return Status::Ok();
  if (static_cast<double>(dead_bytes_) <
      options_.gc_garbage_ratio * static_cast<double>(log_bytes_)) {
    return Status::Ok();
  }
  return CompactLocked();
}

Status NoVoHT::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactLocked();
}

Status NoVoHT::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (read_only_.load(std::memory_order_relaxed)) {
    return Status(StatusCode::kInternal, "store is read-only");
  }
  for (Node*& head : buckets_) {
    while (head) {
      Node* next = head->next;
      delete head;
      head = next;
    }
    head = nullptr;
  }
  entries_ = 0;
  resident_values_ = 0;
  // Checkpointing the empty table truncates the log and resets the byte
  // accounting, so a crash after Clear() recovers an empty store too.
  return CompactLocked();
}

Status NoVoHT::CompactLocked() {
  if (options_.path.empty()) return Status::Ok();
  // Quiesce the group-commit flusher: it must not be fdatasync'ing log_fd_
  // while we swap it for the compacted file.
  Status drained = DrainCommitsLocked();
  if (!drained.ok()) return drained;
  const Stopwatch watch(SystemClock::Instance());
  std::string tmp = options_.path + ".compact";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status(StatusCode::kInternal, "cannot open compaction file");
  }
  std::string batch;
  std::uint64_t new_log_bytes = 0;
  Status failure;
  for (Node* head : buckets_) {
    for (Node* node = head; node; node = node->next) {
      std::string loaded;
      std::string_view value;
      if (node->resident) {
        value = node->value;
      } else {
        auto disk = LoadValue(*node);  // old read_fd_ stays valid
        if (!disk.ok()) {
          failure = disk.status();
          break;
        }
        loaded = std::move(*disk);
        value = loaded;
      }
      std::size_t offset_in_record = 0;
      std::string record =
          EncodeRecord(kRecPut, node->key, value, &offset_in_record);
      node->log_offset = new_log_bytes + batch.size() + offset_in_record;
      node->offset_valid = true;
      batch += record;
      if (batch.size() > (1u << 20)) {
        Status status = WriteAll(fd, batch);
        if (!status.ok()) {
          failure = status;
          break;
        }
        new_log_bytes += batch.size();
        batch.clear();
      }
    }
    if (!failure.ok()) break;
  }
  if (failure.ok() && !batch.empty()) {
    Status status = WriteAll(fd, batch);
    if (!status.ok()) failure = status;
    new_log_bytes += batch.size();
  }
  if (!failure.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return failure;
  }
  if (SyncFd(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return FailSync("checkpoint fsync");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), options_.path.c_str()) != 0) {
    // Node offsets were already rewritten against the new file; the store
    // can no longer trust its log bookkeeping.
    read_only_.store(true, std::memory_order_relaxed);
    return Status(StatusCode::kInternal, "compaction rename failed");
  }
  {
    // The flusher reads log_fd_ under commit_mu_; it is idle (drained
    // above, and mu_ blocks new appends), so this is uncontended.
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    if (log_fd_ >= 0) ::close(log_fd_);
    log_fd_ = ::open(options_.path.c_str(), O_WRONLY | O_APPEND, 0644);
  }
  if (log_fd_ < 0) {
    read_only_.store(true, std::memory_order_relaxed);
    return Status(StatusCode::kInternal, "cannot reopen compacted log");
  }
  if (read_fd_ >= 0) ::close(read_fd_);
  read_fd_ = ::open(options_.path.c_str(), O_RDONLY);
  if (read_fd_ < 0) {
    read_only_.store(true, std::memory_order_relaxed);
    return Status(StatusCode::kInternal, "cannot reopen log for reads");
  }
  log_bytes_ = new_log_bytes;
  dead_bytes_ = 0;
  ++gc_runs_;
  const Nanos elapsed = watch.Elapsed();
  gc_duration_ns_.Record(elapsed);
  gc_nanos_total_ += static_cast<std::uint64_t>(elapsed);
  return Status::Ok();
}

NoVoHTStats NoVoHT::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  NoVoHTStats s;
  s.entries = entries_;
  s.buckets = buckets_.size();
  s.resizes = resizes_;
  s.gc_runs = gc_runs_;
  s.log_bytes = log_bytes_;
  s.dead_bytes = dead_bytes_;
  s.recovered_records = recovered_records_;
  s.resident_values = resident_values_;
  s.evictions = evictions_;
  s.disk_reads = disk_reads_;
  s.live_bytes = log_bytes_ - dead_bytes_;
  s.gc_nanos_total = gc_nanos_total_;
  s.fsync_errors = fsync_errors_.load(std::memory_order_relaxed);
  s.read_only = read_only_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    s.group_commits = group_commits_;
  }
  return s;
}

}  // namespace zht
