#include "novoht/novoht.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "common/crc32.h"
#include "common/log.h"
#include "hashing/hash_functions.h"
#include "serialize/wire.h"

namespace zht {
namespace {

// Log record types.
constexpr std::uint8_t kRecPut = 1;
constexpr std::uint8_t kRecRemove = 2;
constexpr std::uint8_t kRecAppend = 3;

std::size_t VarintLen(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Record layout: [crc32:4 LE][type:1][klen varint][vlen varint][key][value]
// crc covers everything after the crc field. *value_offset_in_record gets
// the byte index of the value payload within the record.
std::string EncodeRecord(std::uint8_t type, std::string_view key,
                         std::string_view value,
                         std::size_t* value_offset_in_record = nullptr) {
  std::string body;
  wire::Writer w(&body);
  body.push_back(static_cast<char>(type));
  w.PutVarint(key.size());
  w.PutVarint(value.size());
  w.PutBytes(key);
  w.PutBytes(value);

  if (value_offset_in_record) {
    *value_offset_in_record = 4 + 1 + VarintLen(key.size()) +
                              VarintLen(value.size()) + key.size();
  }
  std::uint32_t crc = Crc32c(body);
  std::string out;
  out.reserve(body.size() + 4);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  out += body;
  return out;
}

Status WriteAll(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal,
                    std::string("log write failed: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

NoVoHT::NoVoHT(NoVoHTOptions options) : options_(std::move(options)) {
  std::uint64_t buckets =
      options_.initial_buckets ? options_.initial_buckets : 1;
  buckets_.assign(buckets, nullptr);
}

Result<std::unique_ptr<NoVoHT>> NoVoHT::Open(const NoVoHTOptions& options) {
  if (options.max_resident_values != 0 && options.path.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "max_resident_values needs a persistence log");
  }
  std::unique_ptr<NoVoHT> store(new NoVoHT(options));
  if (!options.path.empty()) {
    Status status = store->RecoverFromLog();
    if (!status.ok()) return status;
    store->log_fd_ =
        ::open(options.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (store->log_fd_ < 0) {
      return Status(StatusCode::kInternal,
                    "cannot open log: " + options.path);
    }
    store->read_fd_ = ::open(options.path.c_str(), O_RDONLY);
    if (store->read_fd_ < 0) {
      return Status(StatusCode::kInternal,
                    "cannot open log for reads: " + options.path);
    }
    store->EnforceResidencyCap();
  }
  return store;
}

NoVoHT::~NoVoHT() {
  if (log_fd_ >= 0) ::close(log_fd_);
  if (read_fd_ >= 0) ::close(read_fd_);
  for (Node* head : buckets_) {
    while (head) {
      Node* next = head->next;
      delete head;
      head = next;
    }
  }
}

std::uint64_t NoVoHT::RecordBytes(std::string_view key,
                                  std::string_view value) {
  // Close enough for GC accounting: header ~8 bytes + payload.
  return 8 + key.size() + value.size();
}

std::uint64_t NoVoHT::BucketIndex(std::string_view key) const {
  return Fnv1a64(key) % buckets_.size();
}

NoVoHT::Node* NoVoHT::FindNode(std::string_view key) const {
  for (Node* node = buckets_[BucketIndex(key)]; node; node = node->next) {
    if (node->key == key) return node;
  }
  return nullptr;
}

std::uint64_t NoVoHT::ApplyPut(std::string_view key, std::string_view value) {
  Node* node = FindNode(key);
  if (node) {
    std::uint64_t dead =
        RecordBytes(node->key, node->resident
                                   ? std::string_view(node->value)
                                   : std::string_view());
    if (!node->resident) {
      node->resident = true;
      ++resident_values_;
    }
    node->value.assign(value);
    node->value_len = static_cast<std::uint32_t>(value.size());
    return dead;
  }
  auto* fresh = new Node{std::string(key), std::string(value), nullptr,
                         0, static_cast<std::uint32_t>(value.size()),
                         /*resident=*/true, /*offset_valid=*/false};
  std::uint64_t index = BucketIndex(key);
  fresh->next = buckets_[index];
  buckets_[index] = fresh;
  ++entries_;
  ++resident_values_;
  ResizeIfNeeded();
  return 0;
}

std::uint64_t NoVoHT::ApplyRemove(std::string_view key, bool* found) {
  std::uint64_t index = BucketIndex(key);
  Node** link = &buckets_[index];
  while (*link) {
    Node* node = *link;
    if (node->key == key) {
      std::uint64_t dead = RecordBytes(node->key, node->value) +
                           RecordBytes(key, "");  // the remove record itself
      if (node->resident) --resident_values_;
      *link = node->next;
      delete node;
      --entries_;
      *found = true;
      return dead;
    }
    link = &node->next;
  }
  *found = false;
  return 0;
}

void NoVoHT::ApplyAppend(std::string_view key, std::string_view value) {
  Node* node = FindNode(key);
  if (node) {
    node->value.append(value);
    node->value_len = static_cast<std::uint32_t>(node->value.size());
    node->offset_valid = false;  // the full value is no longer contiguous
    return;
  }
  ApplyPut(key, value);
  if (Node* fresh = FindNode(key)) fresh->offset_valid = false;
}

void NoVoHT::ResizeIfNeeded() {
  double load = static_cast<double>(entries_) /
                static_cast<double>(buckets_.size());
  if (load <= options_.max_load_factor) return;
  std::uint64_t next = static_cast<std::uint64_t>(
      static_cast<double>(buckets_.size()) * options_.resize_multiplier);
  if (next <= buckets_.size()) next = buckets_.size() + 1;
  if (options_.max_buckets && next > options_.max_buckets) {
    next = options_.max_buckets;
    if (next <= buckets_.size()) return;  // at the cap; chains grow instead
  }
  RehashInto(next);
  ++resizes_;
}

void NoVoHT::RehashInto(std::uint64_t new_bucket_count) {
  std::vector<Node*> old = std::move(buckets_);
  buckets_.assign(new_bucket_count, nullptr);
  for (Node* head : old) {
    while (head) {
      Node* next = head->next;
      std::uint64_t index = BucketIndex(head->key);
      head->next = buckets_[index];
      buckets_[index] = head;
      head = next;
    }
  }
}

Status NoVoHT::RecoverFromLog() {
  int fd = ::open(options_.path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::Ok();  // fresh store
    return Status(StatusCode::kInternal, "cannot read log: " + options_.path);
  }
  std::string data;
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    data.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::size_t pos = 0;
  std::size_t valid_end = 0;
  while (pos + 5 <= data.size()) {
    std::uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i) {
      stored_crc |= static_cast<std::uint32_t>(
                        static_cast<std::uint8_t>(data[pos + i]))
                    << (8 * i);
    }
    std::string_view body_start = std::string_view(data).substr(pos + 4);
    std::uint8_t type = static_cast<std::uint8_t>(body_start[0]);
    wire::Reader fields(body_start.substr(1));
    std::uint64_t klen, vlen;
    if (!fields.GetVarint(&klen) || !fields.GetVarint(&vlen)) break;
    std::string_view key, value;
    if (!fields.GetBytes(klen, &key) || !fields.GetBytes(vlen, &value)) break;

    std::size_t body_len = 1 + (body_start.size() - 1 - fields.remaining());
    std::string_view body = body_start.substr(0, body_len);
    if (Crc32c(body) != stored_crc) {
      // Torn tail from a crash is expected: truncate. Corruption mid-log
      // (more records follow) is an error.
      if (pos + 4 + body_len < data.size()) {
        return Status(StatusCode::kCorruption,
                      "log corrupt at offset " + std::to_string(pos));
      }
      break;
    }

    // Value payload offset within the file for residency bookkeeping.
    std::uint64_t value_offset =
        pos + 4 + 1 + VarintLen(klen) + VarintLen(vlen) + klen;

    switch (type) {
      case kRecPut: {
        dead_bytes_ += ApplyPut(key, value);
        if (Node* node = FindNode(key)) {
          node->log_offset = value_offset;
          node->offset_valid = true;
        }
        break;
      }
      case kRecRemove: {
        bool found = false;
        dead_bytes_ += ApplyRemove(key, &found);
        break;
      }
      case kRecAppend:
        ApplyAppend(key, value);
        break;
      default:
        return Status(StatusCode::kCorruption,
                      "unknown log record type " + std::to_string(type));
    }
    ++recovered_records_;
    pos += 4 + body_len;
    valid_end = pos;
    log_bytes_ += 4 + body_len;
  }

  if (valid_end < data.size()) {
    // Trim torn tail so future appends start at a clean boundary.
    if (::truncate(options_.path.c_str(),
                   static_cast<off_t>(valid_end)) != 0) {
      return Status(StatusCode::kInternal, "cannot truncate torn log tail");
    }
    ZHT_WARN << "NoVoHT: trimmed torn log tail at byte " << valid_end;
  }
  return Status::Ok();
}

Status NoVoHT::AppendLogRecord(std::uint8_t type, std::string_view key,
                               std::string_view value,
                               std::uint64_t* value_offset) {
  if (log_fd_ < 0) {
    if (value_offset) *value_offset = 0;
    return Status::Ok();
  }
  std::size_t offset_in_record = 0;
  std::string record = EncodeRecord(type, key, value, &offset_in_record);
  Status status = WriteAll(log_fd_, record);
  if (!status.ok()) return status;
  if (value_offset) *value_offset = log_bytes_ + offset_in_record;
  log_bytes_ += record.size();
  if (options_.fsync_every_op) ::fdatasync(log_fd_);
  return Status::Ok();
}

Result<std::string> NoVoHT::LoadValue(const Node& node) const {
  if (node.value_len == 0) return std::string();
  if (read_fd_ < 0) {
    return Status(StatusCode::kInternal, "no log to load evicted value");
  }
  std::string out(node.value_len, '\0');
  std::size_t done = 0;
  while (done < out.size()) {
    ssize_t r = ::pread(read_fd_, out.data() + done, out.size() - done,
                        static_cast<off_t>(node.log_offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal, "pread of evicted value failed");
    }
    if (r == 0) {
      return Status(StatusCode::kCorruption, "evicted value truncated");
    }
    done += static_cast<std::size_t>(r);
  }
  ++disk_reads_;
  return out;
}

Status NoVoHT::EnsureResident(Node* node) {
  if (node->resident) return Status::Ok();
  auto value = LoadValue(*node);
  if (!value.ok()) return value.status();
  node->value = std::move(*value);
  node->resident = true;
  ++resident_values_;
  return Status::Ok();
}

void NoVoHT::MaybeEvict(const Node* keep) {
  if (options_.max_resident_values == 0 || log_fd_ < 0) return;
  std::uint64_t guard = buckets_.size() + 1;
  while (resident_values_ > options_.max_resident_values && guard-- > 0) {
    Node* head = buckets_[evict_cursor_ % buckets_.size()];
    ++evict_cursor_;
    for (Node* node = head; node; node = node->next) {
      if (node == keep || !node->resident) continue;
      if (!node->offset_valid) {
        // Append-dirtied value: re-log the full value so a contiguous copy
        // exists, then evict.
        std::uint64_t offset = 0;
        Status status =
            AppendLogRecord(kRecPut, node->key, node->value, &offset);
        if (!status.ok()) {
          ZHT_WARN << "NoVoHT: cannot re-log for eviction: "
                   << status.ToString();
          continue;
        }
        dead_bytes_ += RecordBytes(node->key, node->value);
        node->log_offset = offset;
        node->offset_valid = true;
      }
      node->value.clear();
      node->value.shrink_to_fit();
      node->resident = false;
      --resident_values_;
      ++evictions_;
      if (resident_values_ <= options_.max_resident_values) return;
    }
  }
}

void NoVoHT::EnforceResidencyCap() {
  std::lock_guard<std::mutex> lock(mu_);
  MaybeEvict(nullptr);
}

Status NoVoHT::Put(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_entries && entries_ >= options_.max_entries &&
      FindNode(key) == nullptr) {
    return Status(StatusCode::kCapacity, "NoVoHT entry cap reached");
  }
  std::uint64_t offset = 0;
  Status status = AppendLogRecord(kRecPut, key, value, &offset);
  if (!status.ok()) return status;
  dead_bytes_ += ApplyPut(key, value);
  Node* node = FindNode(key);
  if (node && log_fd_ >= 0) {
    node->log_offset = offset;
    node->offset_valid = true;
  }
  MaybeEvict(node);
  return MaybeGc();
}

Result<std::string> NoVoHT::Get(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  Node* node = FindNode(key);
  if (!node) return Status(StatusCode::kNotFound);
  if (node->resident) return node->value;
  // Evicted: serve from the log without re-admitting (scans of cold keys
  // must not thrash the resident set).
  return LoadValue(*node);
}

Status NoVoHT::Remove(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  bool found = false;
  // Log first (WAL discipline), then apply; logging a remove of a missing
  // key would pollute the log, so probe first.
  if (FindNode(key) == nullptr) return Status(StatusCode::kNotFound);
  Status status = AppendLogRecord(kRecRemove, key, "");
  if (!status.ok()) return status;
  dead_bytes_ += ApplyRemove(key, &found);
  return MaybeGc();
}

Status NoVoHT::Append(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_entries && entries_ >= options_.max_entries &&
      FindNode(key) == nullptr) {
    return Status(StatusCode::kCapacity, "NoVoHT entry cap reached");
  }
  Node* node = FindNode(key);
  if (node && !node->resident) {
    Status status = EnsureResident(node);
    if (!status.ok()) return status;
  }
  Status status = AppendLogRecord(kRecAppend, key, value);
  if (!status.ok()) return status;
  ApplyAppend(key, value);
  MaybeEvict(FindNode(key));
  return MaybeGc();
}

std::uint64_t NoVoHT::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void NoVoHT::ForEach(
    const std::function<void(std::string_view, std::string_view)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (Node* head : buckets_) {
    for (Node* node = head; node; node = node->next) {
      if (node->resident) {
        fn(node->key, node->value);
      } else {
        auto value = LoadValue(*node);
        fn(node->key, value.ok() ? *value : std::string());
      }
    }
  }
}

Status NoVoHT::MaybeGc() {
  if (log_fd_ < 0) return Status::Ok();
  if (log_bytes_ < options_.gc_min_log_bytes) return Status::Ok();
  if (static_cast<double>(dead_bytes_) <
      options_.gc_garbage_ratio * static_cast<double>(log_bytes_)) {
    return Status::Ok();
  }
  return CompactLocked();
}

Status NoVoHT::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactLocked();
}

Status NoVoHT::CompactLocked() {
  if (options_.path.empty()) return Status::Ok();
  const Stopwatch watch(SystemClock::Instance());
  std::string tmp = options_.path + ".compact";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status(StatusCode::kInternal, "cannot open compaction file");
  }
  std::string batch;
  std::uint64_t new_log_bytes = 0;
  Status failure;
  for (Node* head : buckets_) {
    for (Node* node = head; node; node = node->next) {
      std::string loaded;
      std::string_view value;
      if (node->resident) {
        value = node->value;
      } else {
        auto disk = LoadValue(*node);  // old read_fd_ stays valid
        if (!disk.ok()) {
          failure = disk.status();
          break;
        }
        loaded = std::move(*disk);
        value = loaded;
      }
      std::size_t offset_in_record = 0;
      std::string record =
          EncodeRecord(kRecPut, node->key, value, &offset_in_record);
      node->log_offset = new_log_bytes + batch.size() + offset_in_record;
      node->offset_valid = true;
      batch += record;
      if (batch.size() > (1u << 20)) {
        Status status = WriteAll(fd, batch);
        if (!status.ok()) {
          failure = status;
          break;
        }
        new_log_bytes += batch.size();
        batch.clear();
      }
    }
    if (!failure.ok()) break;
  }
  if (failure.ok() && !batch.empty()) {
    Status status = WriteAll(fd, batch);
    if (!status.ok()) failure = status;
    new_log_bytes += batch.size();
  }
  if (!failure.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return failure;
  }
  ::fdatasync(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), options_.path.c_str()) != 0) {
    return Status(StatusCode::kInternal, "compaction rename failed");
  }
  if (log_fd_ >= 0) ::close(log_fd_);
  log_fd_ = ::open(options_.path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (log_fd_ < 0) {
    return Status(StatusCode::kInternal, "cannot reopen compacted log");
  }
  if (read_fd_ >= 0) ::close(read_fd_);
  read_fd_ = ::open(options_.path.c_str(), O_RDONLY);
  if (read_fd_ < 0) {
    return Status(StatusCode::kInternal, "cannot reopen log for reads");
  }
  log_bytes_ = new_log_bytes;
  dead_bytes_ = 0;
  ++gc_runs_;
  const Nanos elapsed = watch.Elapsed();
  gc_duration_ns_.Record(elapsed);
  gc_nanos_total_ += static_cast<std::uint64_t>(elapsed);
  return Status::Ok();
}

NoVoHTStats NoVoHT::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  NoVoHTStats s;
  s.entries = entries_;
  s.buckets = buckets_.size();
  s.resizes = resizes_;
  s.gc_runs = gc_runs_;
  s.log_bytes = log_bytes_;
  s.dead_bytes = dead_bytes_;
  s.recovered_records = recovered_records_;
  s.resident_values = resident_values_;
  s.evictions = evictions_;
  s.disk_reads = disk_reads_;
  s.live_bytes = log_bytes_ - dead_bytes_;
  s.gc_nanos_total = gc_nanos_total_;
  return s;
}

}  // namespace zht
