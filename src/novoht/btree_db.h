// BTreeDB: a BerkeleyDB-like baseline — an on-disk B-tree of fixed-size
// pages with a bounded LRU page cache and write-through updates. Lookups at
// large key counts cost O(log n) page reads, most of which miss the cache;
// this reproduces the latency/scale profile the paper's Figure 6 shows for
// BerkeleyDB (low memory, slower ops).
//
// Deletions are lazy (no rebalancing): emptied leaves are left in place.
// That matches the benchmark workloads (bulk insert/get/remove) and keeps
// the structure compact.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "novoht/kv_store.h"

namespace zht {

struct BTreeDBOptions {
  std::string path;
  std::uint32_t page_size = 4096;
  std::uint32_t cache_pages = 64;  // LRU capacity
};

class BTreeDB final : public KVStore {
 public:
  static Result<std::unique_ptr<BTreeDB>> Open(const BTreeDBOptions& options);

  ~BTreeDB() override;

  BTreeDB(const BTreeDB&) = delete;
  BTreeDB& operator=(const BTreeDB&) = delete;

  Status Put(std::string_view key, std::string_view value) override;
  Result<std::string> Get(std::string_view key) override;
  Status Remove(std::string_view key) override;

  std::uint64_t Size() const override { return entries_; }
  void ForEach(const std::function<void(std::string_view, std::string_view)>&
                   fn) const override;

  bool persistent() const override { return true; }

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }

 private:
  using PageId = std::uint32_t;

  struct Node {
    bool leaf = true;
    std::vector<std::string> keys;
    std::vector<std::string> values;  // leaf payloads
    std::vector<PageId> children;     // internal: keys.size() + 1 entries
  };

  explicit BTreeDB(BTreeDBOptions options);

  Status Bootstrap(bool fresh);
  Status WriteHeader();

  Result<Node*> Fetch(PageId id) const;           // via cache
  Status Store(PageId id, const Node& node);      // write-through
  PageId Allocate();

  static std::string SerializeNode(const Node& node);
  static Result<Node> ParseNode(std::string_view data);
  std::size_t SerializedSize(const Node& node) const;

  Status InsertInto(PageId id, std::string_view key, std::string_view value,
                    bool* grew, std::string* split_key, PageId* split_page,
                    bool* inserted_new);
  Status SplitChild(Node* parent, std::size_t child_index);

  void ForEachFrom(PageId id,
                   const std::function<void(std::string_view,
                                            std::string_view)>& fn) const;

  // LRU cache (mutable: Fetch is logically const).
  void CacheInsert(PageId id, Node node) const;
  void Evict() const;

  BTreeDBOptions options_;
  int fd_ = -1;
  PageId root_ = 1;
  PageId next_page_ = 2;
  std::uint64_t entries_ = 0;

  mutable std::list<PageId> lru_;
  struct CacheEntry {
    Node node;
    std::list<PageId>::iterator lru_it;
  };
  mutable std::unordered_map<PageId, CacheEntry> cache_;
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
};

}  // namespace zht
