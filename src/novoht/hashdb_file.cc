#include "novoht/hashdb_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "hashing/hash_functions.h"

namespace zht {
namespace {

constexpr std::uint64_t kMagic = 0x5a48544844420001ull;  // "ZHTHDB" v1
constexpr std::uint64_t kHeaderBytes = 16;

void EncodeU64(std::uint64_t v, char* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
std::uint64_t DecodeU64(const char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[i]))
         << (8 * i);
  }
  return v;
}
void EncodeU32(std::uint32_t v, char* out) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
std::uint32_t DecodeU32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[i]))
         << (8 * i);
  }
  return v;
}

Result<std::string> PRead(int fd, std::uint64_t offset, std::size_t n) {
  std::string out(n, '\0');
  std::size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, out.data() + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal, "pread failed");
    }
    if (r == 0) return Status(StatusCode::kCorruption, "short read");
    done += static_cast<std::size_t>(r);
  }
  return out;
}

Status PWrite(int fd, std::uint64_t offset, std::string_view data) {
  std::size_t done = 0;
  while (done < data.size()) {
    ssize_t r = ::pwrite(fd, data.data() + done, data.size() - done,
                         static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal, "pwrite failed");
    }
    done += static_cast<std::size_t>(r);
  }
  return Status::Ok();
}

}  // namespace

HashDBFile::HashDBFile(int fd, std::string path, std::uint64_t num_buckets,
                       std::uint64_t file_size, std::uint64_t live)
    : fd_(fd),
      path_(std::move(path)),
      num_buckets_(num_buckets),
      file_size_(file_size),
      live_records_(live) {}

HashDBFile::~HashDBFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<HashDBFile>> HashDBFile::Open(
    const std::string& path, std::uint64_t num_buckets) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Status(StatusCode::kInternal, "cannot open " + path);

  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end == 0) {
    // Fresh store: write header + empty bucket array.
    std::string header(kHeaderBytes, '\0');
    EncodeU64(kMagic, header.data());
    EncodeU64(num_buckets, header.data() + 8);
    std::string buckets(num_buckets * 8, '\0');
    Status s = PWrite(fd, 0, header);
    if (s.ok()) s = PWrite(fd, kHeaderBytes, buckets);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
    std::uint64_t size = kHeaderBytes + num_buckets * 8;
    return std::unique_ptr<HashDBFile>(
        new HashDBFile(fd, path, num_buckets, size, 0));
  }

  // Existing store: validate header and count live records.
  auto header = PRead(fd, 0, kHeaderBytes);
  if (!header.ok()) {
    ::close(fd);
    return header.status();
  }
  if (DecodeU64(header->data()) != kMagic) {
    ::close(fd);
    return Status(StatusCode::kCorruption, "bad HashDB magic");
  }
  std::uint64_t stored_buckets = DecodeU64(header->data() + 8);
  std::unique_ptr<HashDBFile> db(new HashDBFile(
      fd, path, stored_buckets, static_cast<std::uint64_t>(end), 0));
  std::uint64_t live = 0;
  db->ForEach([&live](std::string_view, std::string_view) { ++live; });
  db->live_records_ = live;
  return db;
}

std::uint64_t HashDBFile::BucketOffset(std::string_view key) const {
  return kHeaderBytes + (Fnv1a64(key) % num_buckets_) * 8;
}

Result<std::uint64_t> HashDBFile::ReadU64(std::uint64_t offset) const {
  auto data = PRead(fd_, offset, 8);
  if (!data.ok()) return data.status();
  return DecodeU64(data->data());
}

Status HashDBFile::WriteU64(std::uint64_t offset, std::uint64_t value) {
  char buf[8];
  EncodeU64(value, buf);
  return PWrite(fd_, offset, std::string_view(buf, 8));
}

Result<HashDBFile::RecordHeader> HashDBFile::ReadRecordHeader(
    std::uint64_t offset) const {
  auto data = PRead(fd_, offset, kRecordHeaderBytes);
  if (!data.ok()) return data.status();
  RecordHeader h;
  h.next = DecodeU64(data->data());
  h.klen = DecodeU32(data->data() + 8);
  h.vlen = DecodeU32(data->data() + 12);
  h.deleted = static_cast<std::uint8_t>((*data)[16]);
  return h;
}

Status HashDBFile::Put(std::string_view key, std::string_view value) {
  // Walk the chain: if the key exists and the new value fits in place and
  // sizes match, overwrite; otherwise tombstone and append a new record.
  std::uint64_t bucket = BucketOffset(key);
  auto headr = ReadU64(bucket);
  if (!headr.ok()) return headr.status();
  std::uint64_t off = *headr;
  bool replacing = false;
  while (off != 0) {
    auto h = ReadRecordHeader(off);
    if (!h.ok()) return h.status();
    if (!h->deleted && h->klen == key.size()) {
      auto stored = PRead(fd_, off + kRecordHeaderBytes, h->klen);
      if (!stored.ok()) return stored.status();
      if (*stored == key) {
        if (h->vlen == value.size()) {
          return PWrite(fd_, off + kRecordHeaderBytes + h->klen, value);
        }
        // Size changed: tombstone old record, append new below.
        char dead = 1;
        Status s = PWrite(fd_, off + 16, std::string_view(&dead, 1));
        if (!s.ok()) return s;
        replacing = true;
        break;
      }
    }
    off = h->next;
  }

  std::string record(kRecordHeaderBytes + key.size() + value.size(), '\0');
  EncodeU64(*headr, record.data());  // new record heads the chain
  EncodeU32(static_cast<std::uint32_t>(key.size()), record.data() + 8);
  EncodeU32(static_cast<std::uint32_t>(value.size()), record.data() + 12);
  record[16] = 0;
  std::memcpy(record.data() + kRecordHeaderBytes, key.data(), key.size());
  std::memcpy(record.data() + kRecordHeaderBytes + key.size(), value.data(),
              value.size());
  std::uint64_t new_off = file_size_;
  Status s = PWrite(fd_, new_off, record);
  if (!s.ok()) return s;
  file_size_ += record.size();
  s = WriteU64(bucket, new_off);
  if (!s.ok()) return s;
  if (!replacing) ++live_records_;
  return Status::Ok();
}

Result<std::string> HashDBFile::Get(std::string_view key) {
  auto headr = ReadU64(BucketOffset(key));
  if (!headr.ok()) return headr.status();
  std::uint64_t off = *headr;
  while (off != 0) {
    auto h = ReadRecordHeader(off);
    if (!h.ok()) return h.status();
    if (!h->deleted && h->klen == key.size()) {
      auto payload =
          PRead(fd_, off + kRecordHeaderBytes, h->klen + h->vlen);
      if (!payload.ok()) return payload.status();
      if (std::string_view(*payload).substr(0, h->klen) == key) {
        return payload->substr(h->klen);
      }
    }
    off = h->next;
  }
  return Status(StatusCode::kNotFound);
}

Status HashDBFile::Remove(std::string_view key) {
  auto headr = ReadU64(BucketOffset(key));
  if (!headr.ok()) return headr.status();
  std::uint64_t off = *headr;
  while (off != 0) {
    auto h = ReadRecordHeader(off);
    if (!h.ok()) return h.status();
    if (!h->deleted && h->klen == key.size()) {
      auto stored = PRead(fd_, off + kRecordHeaderBytes, h->klen);
      if (!stored.ok()) return stored.status();
      if (*stored == key) {
        char dead = 1;
        Status s = PWrite(fd_, off + 16, std::string_view(&dead, 1));
        if (!s.ok()) return s;
        --live_records_;
        return Status::Ok();
      }
    }
    off = h->next;
  }
  return Status(StatusCode::kNotFound);
}

void HashDBFile::ForEach(
    const std::function<void(std::string_view, std::string_view)>& fn) const {
  for (std::uint64_t b = 0; b < num_buckets_; ++b) {
    auto headr = ReadU64(kHeaderBytes + b * 8);
    if (!headr.ok()) return;
    std::uint64_t off = *headr;
    // Chains prepend, so the first live record for a key shadows older
    // versions; track seen keys per bucket.
    std::vector<std::string> seen;
    while (off != 0) {
      auto h = ReadRecordHeader(off);
      if (!h.ok()) return;
      auto payload = PRead(fd_, off + kRecordHeaderBytes, h->klen + h->vlen);
      if (!payload.ok()) return;
      std::string key = payload->substr(0, h->klen);
      bool shadowed = false;
      for (const auto& k : seen) {
        if (k == key) {
          shadowed = true;
          break;
        }
      }
      if (!shadowed) {
        seen.push_back(key);
        if (!h->deleted) {
          fn(key, std::string_view(*payload).substr(h->klen));
        }
      }
      off = h->next;
    }
  }
}

}  // namespace zht
