// MemoryMap: std::unordered_map wrapped in the KVStore interface. This is
// the "unordered_map" series of Figure 6 — the no-persistence upper bound —
// and the store the memcached-like baseline is built on.
#pragma once

#include <string>
#include <unordered_map>

#include "novoht/kv_store.h"

namespace zht {

class MemoryMap final : public KVStore {
 public:
  Status Put(std::string_view key, std::string_view value) override {
    map_[std::string(key)] = std::string(value);
    return Status::Ok();
  }

  Result<std::string> Get(std::string_view key) override {
    auto it = map_.find(std::string(key));
    if (it == map_.end()) return Status(StatusCode::kNotFound);
    return it->second;
  }

  Status Remove(std::string_view key) override {
    return map_.erase(std::string(key)) ? Status::Ok()
                                        : Status(StatusCode::kNotFound);
  }

  Status Append(std::string_view key, std::string_view value) override {
    map_[std::string(key)].append(value);
    return Status::Ok();
  }

  std::uint64_t Size() const override { return map_.size(); }

  void ForEach(const std::function<void(std::string_view, std::string_view)>&
                   fn) const override {
    for (const auto& [key, value] : map_) fn(key, value);
  }

  bool supports_append() const override { return true; }

 private:
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace zht
