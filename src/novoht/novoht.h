// NoVoHT: Non-Volatile Hash Table (§III.I and [49]).
//
// A purpose-built persistent in-memory hash table addressing the paper's
// stated limitations of KyotoCabinet:
//   * a specifiable size (bounded memory footprint),
//   * a configurable re-size rate,
//   * configurable garbage collection of the persistence log,
//   * an `append` primitive for lock-free concurrent value modification.
//
// All live pairs stay in memory (lookups never touch disk); every mutation
// is appended to a CRC-protected write-ahead log; compaction rewrites the
// log when the dead-record ratio passes a threshold.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "novoht/kv_store.h"

namespace zht {

struct NoVoHTOptions {
  // Path of the persistence log. Empty => pure in-memory table.
  std::string path;

  // Initial bucket count ("specifying a size").
  std::uint64_t initial_buckets = 1024;

  // Resize when live entries / buckets exceeds this ("re-size rate" knob:
  // how eagerly the table grows).
  double max_load_factor = 1.5;

  // Bucket multiplier applied on resize.
  double resize_multiplier = 2.0;

  // Hard cap on buckets (0 = unbounded). Bounds the index footprint.
  std::uint64_t max_buckets = 0;

  // Hard cap on entries (0 = unbounded); Put/Append on new keys beyond the
  // cap fail with kCapacity. Bounds the data footprint.
  std::uint64_t max_entries = 0;

  // Garbage collection: compact when dead bytes / log bytes exceeds the
  // ratio AND the log is at least min_log_bytes.
  double gc_garbage_ratio = 0.5;
  std::uint64_t gc_min_log_bytes = 1 << 20;

  // Durability of acked mutations (see DurabilityMode). kGroupCommit runs a
  // flusher thread that amortizes one fdatasync over every writer in the
  // commit window; kEveryOp syncs inline per mutation.
  DurabilityMode durability = DurabilityMode::kNone;

  // Group commit only: after the first pending commit wakes the flusher, it
  // waits up to this long for more writers to join the window before
  // syncing. 0 = sync as soon as the flusher wakes (lowest latency; batches
  // still form while a sync is in flight).
  Nanos max_commit_latency = 0;

  // Group commit only: when true (the default), mutators block until the
  // flusher has synced past their commit. Servers that ack once per request
  // set this false and pair last_commit_token() with WaitDurable() instead.
  bool wait_for_durable = true;

  // Recovery replays the log through a streaming window of this many bytes
  // (grown temporarily for a single over-sized record), so recovery memory
  // is bounded regardless of log size.
  std::uint64_t recover_buffer_bytes = 256 * 1024;

  // Test hook: stands in for ::fdatasync on the log fd when set. Lets tests
  // inject fsync failures without a faulty disk.
  std::function<int(int fd)> fsync_hook;

  // "By tuning the number of Key-Value pairs that are allowed [to] stay in
  // memory, users can achieve the balance between performance and memory
  // consumption" (§III.A). 0 = everything resident. When set (requires a
  // persistence log), values beyond the cap are evicted from memory and
  // served from the log by offset; keys always stay in memory.
  std::uint64_t max_resident_values = 0;
};

struct NoVoHTStats {
  std::uint64_t entries = 0;
  std::uint64_t buckets = 0;
  std::uint64_t resizes = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t dead_bytes = 0;
  std::uint64_t recovered_records = 0;  // replayed at Open()
  std::uint64_t resident_values = 0;    // values held in memory
  std::uint64_t evictions = 0;
  std::uint64_t disk_reads = 0;         // Gets served from the log
  std::uint64_t live_bytes = 0;         // log_bytes - dead_bytes
  std::uint64_t gc_nanos_total = 0;     // cumulative time inside compaction
  std::uint64_t fsync_errors = 0;       // failed log/checkpoint fsyncs
  std::uint64_t group_commits = 0;      // fsyncs issued by the flusher
  bool read_only = false;               // poisoned by a failed fsync/write
};

class NoVoHT final : public KVStore {
 public:
  // Opens (and recovers, if the log exists) a NoVoHT store.
  static Result<std::unique_ptr<NoVoHT>> Open(const NoVoHTOptions& options);

  ~NoVoHT() override;

  NoVoHT(const NoVoHT&) = delete;
  NoVoHT& operator=(const NoVoHT&) = delete;

  Status Put(std::string_view key, std::string_view value) override;
  Result<std::string> Get(std::string_view key) override;
  Status Remove(std::string_view key) override;
  Status Append(std::string_view key, std::string_view value) override;

  std::uint64_t Size() const override;
  void ForEach(const std::function<void(std::string_view, std::string_view)>&
                   fn) const override;

  bool persistent() const override { return !options_.path.empty(); }
  bool supports_append() const override { return true; }

  // Rewrites the log to contain exactly the live pairs (checkpoint). Also
  // invoked automatically by the GC policy. Thread-safe.
  Status Compact();

  // Drops every pair and checkpoints the now-empty table, truncating the
  // log — the store behaves as if freshly created at the same path. Used
  // by the rebuild stream (KVStore::Clear). Thread-safe.
  Status Clear() override;

  // Group-commit handshake (KVStore). Tokens are monotone commit sequence
  // numbers (not byte offsets, so compaction cannot invalidate them). Both
  // are trivial outside kGroupCommit mode.
  std::uint64_t last_commit_token() const override;
  Status WaitDurable(std::uint64_t token) override;
  // Parks `done` on the flusher: invoked (on the flusher thread) by the
  // fsync that covers `token`, immediately when the token is already
  // durable or the store is poisoned, and at destruction for any leftovers.
  void NotifyDurable(std::uint64_t token,
                     std::function<void(Status)> done) override;
  bool durability_metrics(StoreDurabilityMetrics* out) const override;

  NoVoHTStats stats() const;

  // Distribution of compaction (GC/checkpoint) durations in nanoseconds;
  // one sample per log rewrite. Lock-free to read.
  HistogramData GcDurationHistogram() const {
    return gc_duration_ns_.Snapshot();
  }

 private:
  explicit NoVoHT(NoVoHTOptions options);

  struct Node {
    std::string key;
    std::string value;        // empty when evicted (resident == false)
    Node* next = nullptr;
    std::uint64_t log_offset = 0;  // of the value payload in the log
    std::uint32_t value_len = 0;
    bool resident = true;
    // The log contains a contiguous copy of the full current value at
    // log_offset (false after an append until re-logged; such nodes are
    // re-logged as full puts before eviction).
    bool offset_valid = false;
  };

  Status RecoverFromLog();
  // Appends the record; when value_offset is non-null, receives the byte
  // offset of the value payload inside the log. In kGroupCommit mode the
  // record's commit sequence number is published for the flusher and, when
  // commit_token is non-null, returned to the caller.
  Status AppendLogRecord(std::uint8_t type, std::string_view key,
                         std::string_view value,
                         std::uint64_t* value_offset = nullptr,
                         std::uint64_t* commit_token = nullptr);
  Status MaybeGc();
  Status CompactLocked();

  // Durability plumbing.
  int SyncFd(int fd) const;       // options_.fsync_hook or ::fdatasync
  Status FailSync(const char* what);  // poison the store after a bad fsync
  Status MaybeWaitDurable(std::uint64_t token);  // honors wait_for_durable
  Status DrainCommitsLocked();    // callers hold mu_; quiesces the flusher
  void FlusherLoop();
  // Scans [from, file_size) for any offset holding a complete CRC-valid
  // record — distinguishes a torn tail (nothing valid follows) from mid-log
  // corruption (later records would be silently dropped).
  static bool ValidRecordFollows(int fd, std::uint64_t from,
                                 std::uint64_t file_size);

  // Residency management (max_resident_values).
  void MaybeEvict(const Node* keep);
  Result<std::string> LoadValue(const Node& node) const;
  Status EnsureResident(Node* node);
  void EnforceResidencyCap();
  void ResizeIfNeeded();
  void RehashInto(std::uint64_t new_bucket_count);

  std::uint64_t BucketIndex(std::string_view key) const;
  Node* FindNode(std::string_view key) const;

  // In-memory application of a mutation (shared by the public ops and log
  // replay). Returns bytes made dead in the log by this change.
  std::uint64_t ApplyPut(std::string_view key, std::string_view value);
  std::uint64_t ApplyRemove(std::string_view key, bool* found);
  void ApplyAppend(std::string_view key, std::string_view value);

  static std::uint64_t RecordBytes(std::string_view key,
                                   std::string_view value);

  NoVoHTOptions options_;
  std::vector<Node*> buckets_;
  std::uint64_t entries_ = 0;
  std::uint64_t resizes_ = 0;
  std::uint64_t gc_runs_ = 0;
  std::uint64_t log_bytes_ = 0;
  std::uint64_t dead_bytes_ = 0;
  std::uint64_t recovered_records_ = 0;
  std::uint64_t resident_values_ = 0;
  std::uint64_t evictions_ = 0;
  mutable std::uint64_t disk_reads_ = 0;
  std::uint64_t evict_cursor_ = 0;  // clock hand over buckets
  Histogram gc_duration_ns_;        // compaction wall time per run
  std::uint64_t gc_nanos_total_ = 0;
  int log_fd_ = -1;
  int read_fd_ = -1;  // O_RDONLY view of the log for evicted values

  // Protects Append's read-modify-write (the paper's "simple local lock"
  // enabling lock-free *distributed* concurrent modification) and makes the
  // whole store safe for the multi-threaded server ablation.
  mutable std::mutex mu_;

  // Commit pipeline (kGroupCommit). Lock order: mu_ -> commit_mu_; the
  // flusher thread takes only commit_mu_ and never mu_. Mutators publish
  // their sequence number under both locks; waiters take only commit_mu_.
  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;   // signaled as durable_seq_ advances
  std::condition_variable flusher_cv_;  // signaled when work arrives
  std::uint64_t appended_seq_ = 0;      // commits accepted so far
  std::uint64_t durable_seq_ = 0;       // commits covered by an fsync
  std::uint64_t pending_ops_ = 0;       // commits since the last fsync
  std::uint64_t group_commits_ = 0;
  // Durability callbacks parked until durable_seq_ reaches their token
  // (guarded by commit_mu_; invoked with it released).
  struct DurableWaiter {
    std::uint64_t token;
    std::function<void(Status)> done;
  };
  std::vector<DurableWaiter> durable_waiters_;
  // Extracts the waiters satisfied by the current durable_seq_ /
  // sync_failed_ state. Caller holds commit_mu_ and invokes the results
  // after releasing it.
  std::vector<DurableWaiter> TakeReadyWaitersLocked();
  bool sync_failed_ = false;            // a flusher fsync failed
  bool stop_flusher_ = false;
  std::thread flusher_;

  // A failed fsync (or torn log write) leaves the on-disk tail unknowable:
  // the store refuses further mutations. Atomic so stats() and the flusher
  // can set/read it without mu_.
  std::atomic<bool> read_only_{false};
  std::atomic<std::uint64_t> fsync_errors_{0};
  Histogram group_commit_batch_;  // mutations covered per group fsync
  Histogram fsync_micros_;        // wall time of every log fsync
};

}  // namespace zht
