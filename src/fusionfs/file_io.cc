#include "fusionfs/file_io.h"

#include <algorithm>

namespace zht::fusionfs {

Result<std::string> FileIo::LoadBlock(const std::string& path,
                                      std::uint64_t index) const {
  auto block = client_->Lookup(BlockKey(path, index));
  if (block.ok()) return block;
  if (block.status().code() == StatusCode::kNotFound) {
    return std::string();  // sparse/unwritten region reads as zeros
  }
  return block.status();
}

Status FileIo::Write(const std::string& path, std::uint64_t offset,
                     std::string_view data) {
  auto meta = metadata_->Stat(path);
  if (!meta.ok()) return meta.status();
  if (meta->is_dir) {
    return Status(StatusCode::kInvalidArgument, "is a directory");
  }
  if (data.empty()) return Status::Ok();

  const std::uint64_t block_size = options_.block_size;
  std::uint64_t cursor = offset;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    std::uint64_t block_index = cursor / block_size;
    std::uint64_t within = cursor % block_size;
    std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(block_size - within, data.size() - consumed));

    if (within == 0 && take == block_size) {
      // Full-block overwrite: no read-modify-write.
      Status status = client_->Insert(BlockKey(path, block_index),
                                      data.substr(consumed, take));
      if (!status.ok()) return status;
    } else {
      auto existing = LoadBlock(path, block_index);
      if (!existing.ok()) return existing.status();
      std::string block = std::move(*existing);
      if (block.size() < within + take) block.resize(within + take, '\0');
      block.replace(static_cast<std::size_t>(within), take,
                    data.substr(consumed, take));
      Status status = client_->Insert(BlockKey(path, block_index), block);
      if (!status.ok()) return status;
    }
    cursor += take;
    consumed += take;
  }

  if (cursor > meta->size) {
    meta->size = cursor;
    meta->mtime += 1;
    return metadata_->Update(path, *meta);
  }
  return Status::Ok();
}

Result<std::string> FileIo::Read(const std::string& path,
                                 std::uint64_t offset, std::size_t length) {
  auto meta = metadata_->Stat(path);
  if (!meta.ok()) return meta.status();
  if (meta->is_dir) {
    return Status(StatusCode::kInvalidArgument, "is a directory");
  }
  if (offset >= meta->size) return std::string();
  length = static_cast<std::size_t>(
      std::min<std::uint64_t>(length, meta->size - offset));

  const std::uint64_t block_size = options_.block_size;
  std::string out;
  out.reserve(length);
  std::uint64_t cursor = offset;
  while (out.size() < length) {
    std::uint64_t block_index = cursor / block_size;
    std::uint64_t within = cursor % block_size;
    std::size_t take = static_cast<std::size_t>(std::min<std::uint64_t>(
        block_size - within, length - out.size()));
    auto block = LoadBlock(path, block_index);
    if (!block.ok()) return block.status();
    if (block->size() < within + take) block->resize(within + take, '\0');
    out.append(*block, static_cast<std::size_t>(within), take);
    cursor += take;
  }
  return out;
}

Result<std::string> FileIo::ReadAll(const std::string& path) {
  auto meta = metadata_->Stat(path);
  if (!meta.ok()) return meta.status();
  return Read(path, 0, static_cast<std::size_t>(meta->size));
}

Status FileIo::Truncate(const std::string& path, std::uint64_t size) {
  auto meta = metadata_->Stat(path);
  if (!meta.ok()) return meta.status();
  if (meta->is_dir) {
    return Status(StatusCode::kInvalidArgument, "is a directory");
  }
  const std::uint64_t block_size = options_.block_size;
  if (size < meta->size) {
    // Drop whole blocks beyond the new end; trim the boundary block.
    std::uint64_t first_dead = (size + block_size - 1) / block_size;
    std::uint64_t last_block =
        meta->size == 0 ? 0 : (meta->size - 1) / block_size;
    for (std::uint64_t b = first_dead; b <= last_block; ++b) {
      client_->Remove(BlockKey(path, b));  // NotFound for sparse blocks: ok
    }
    if (size % block_size != 0) {
      std::uint64_t boundary = size / block_size;
      auto block = LoadBlock(path, boundary);
      if (!block.ok()) return block.status();
      block->resize(static_cast<std::size_t>(size % block_size));
      Status status = client_->Insert(BlockKey(path, boundary), *block);
      if (!status.ok()) return status;
    }
  }
  meta->size = size;
  meta->mtime += 1;
  return metadata_->Update(path, *meta);
}

Status FileIo::Delete(const std::string& path) {
  auto meta = metadata_->Stat(path);
  if (!meta.ok()) return meta.status();
  if (!meta->is_dir) {
    std::uint64_t last_block =
        meta->size == 0 ? 0 : (meta->size - 1) / options_.block_size;
    for (std::uint64_t b = 0; b <= last_block; ++b) {
      client_->Remove(BlockKey(path, b));
    }
  }
  return metadata_->Unlink(path);
}

}  // namespace zht::fusionfs
