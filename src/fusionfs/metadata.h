// FusionFS distributed metadata management (§V.A): every compute node is
// client + metadata server + storage server; metadata lives in ZHT, so
// lookups are constant-time at arbitrary concurrency. Directories are
// "special files containing only metadata about the files in the
// directory": their entry lists are maintained with ZHT's append, so many
// clients can create files in one directory without a distributed lock —
// the paper's headline use of append (§III.I).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/zht_client.h"

namespace zht::fusionfs {

struct FileMetadata {
  bool is_dir = false;
  std::uint64_t size = 0;
  std::uint32_t mode = 0644;
  std::int64_t ctime = 0;   // creation stamp (caller-provided ticks)
  std::int64_t mtime = 0;
  std::uint32_t home_node = 0;  // node holding the file's data (FusionFS
                                // writes locally for data locality, §V.A)

  std::string Encode() const;
  static Result<FileMetadata> Decode(std::string_view data);
  bool operator==(const FileMetadata&) const = default;
};

class MetadataService {
 public:
  explicit MetadataService(ZhtClient* client) : client_(client) {}

  // Creates the root directory entry; call once per filesystem.
  Status Format();

  // File create = parent-dir existence check + metadata insert + lock-free
  // append of the name to the parent's entry list (3 ZHT ops).
  Status CreateFile(const std::string& path, const FileMetadata& meta);
  Status MkDir(const std::string& path);

  Result<FileMetadata> Stat(const std::string& path);
  Status Update(const std::string& path, const FileMetadata& meta);

  // Folds the parent's append log (+name; / -name;) into the live listing.
  Result<std::vector<std::string>> ReadDir(const std::string& path);

  // Unlink = metadata remove + tombstone append in the parent.
  Status Unlink(const std::string& path);
  Status RmDir(const std::string& path);  // must be empty

  Status Rename(const std::string& from, const std::string& to);

  static std::string ParentOf(const std::string& path);
  static std::string BaseNameOf(const std::string& path);

 private:
  static std::string MetaKey(const std::string& path) { return "m:" + path; }
  static std::string DirKey(const std::string& path) { return "d:" + path; }

  Status AppendDirEntry(const std::string& dir, char op,
                        const std::string& name);

  ZhtClient* client_;
};

// ---- GPFS baseline model (Figures 1 and 16) ------------------------------
//
// GPFS metadata under concurrent operations serializes behind shared locks
// and saturates at 4–32 concurrent clients (§I). Constants calibrated to
// the paper's measured anchors: ~5 ms at 1 node; 393 ms (many directories)
// and 2449 ms (one directory) at 512 nodes; ~63 s per op at 16K processors
// in one directory.
struct GpfsModel {
  double base_ms = 4.8;        // uncontended create
  double saturation_nodes = 8; // servers saturate beyond this concurrency

  // Concurrent creates spread over many directories: contention on the
  // allocation/journal locks past the saturation point.
  double ManyDirMsPerOp(std::uint64_t concurrent_clients) const {
    double c = static_cast<double>(concurrent_clients);
    return base_ms * (1.0 + c / saturation_nodes);
  }

  // All creates in ONE directory: a single directory lock fully serializes
  // the operations.
  double OneDirMsPerOp(std::uint64_t concurrent_clients) const {
    return base_ms * static_cast<double>(concurrent_clients);
  }
};

}  // namespace zht::fusionfs
