#include "fusionfs/metadata.h"

#include <algorithm>

#include "serialize/wire.h"

namespace zht::fusionfs {
namespace {

enum MetaField : std::uint32_t {
  kIsDir = 1,
  kSize = 2,
  kMode = 3,
  kCtime = 4,
  kMtime = 5,
  kHomeNode = 6,
};

}  // namespace

std::string FileMetadata::Encode() const {
  std::string out;
  wire::Writer w(&out);
  if (is_dir) w.PutVarintField(kIsDir, 1);
  if (size) w.PutVarintField(kSize, size);
  w.PutVarintField(kMode, mode);
  if (ctime) w.PutSignedField(kCtime, ctime);
  if (mtime) w.PutSignedField(kMtime, mtime);
  if (home_node) w.PutVarintField(kHomeNode, home_node);
  return out;
}

Result<FileMetadata> FileMetadata::Decode(std::string_view data) {
  FileMetadata meta;
  meta.mode = 0;
  wire::Reader r(data);
  while (!r.AtEnd()) {
    std::uint32_t field;
    wire::WireType type;
    if (!r.GetTag(&field, &type)) {
      return Status(StatusCode::kCorruption, "metadata tag");
    }
    std::uint64_t v = 0;
    switch (field) {
      case kIsDir:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "dir");
        meta.is_dir = v != 0;
        break;
      case kSize:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "size");
        meta.size = v;
        break;
      case kMode:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "mode");
        meta.mode = static_cast<std::uint32_t>(v);
        break;
      case kCtime:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "ctime");
        meta.ctime = wire::Reader::ZigZagDecode(v);
        break;
      case kMtime:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "mtime");
        meta.mtime = wire::Reader::ZigZagDecode(v);
        break;
      case kHomeNode:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "home");
        meta.home_node = static_cast<std::uint32_t>(v);
        break;
      default:
        if (!r.SkipValue(type)) {
          return Status(StatusCode::kCorruption, "metadata unknown field");
        }
    }
  }
  return meta;
}

std::string MetadataService::ParentOf(const std::string& path) {
  if (path.empty() || path == "/") return "/";
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return "/";
  return path.substr(0, slash);
}

std::string MetadataService::BaseNameOf(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

Status MetadataService::Format() {
  FileMetadata root;
  root.is_dir = true;
  root.mode = 0755;
  return client_->Insert(MetaKey("/"), root.Encode());
}

Status MetadataService::AppendDirEntry(const std::string& dir, char op,
                                       const std::string& name) {
  if (name.find(';') != std::string::npos ||
      name.find('/') != std::string::npos) {
    return Status(StatusCode::kInvalidArgument, "bad file name: " + name);
  }
  std::string entry;
  entry.push_back(op);
  entry += name;
  entry.push_back(';');
  return client_->Append(DirKey(dir), entry);
}

Status MetadataService::CreateFile(const std::string& path,
                                   const FileMetadata& meta) {
  std::string parent = ParentOf(path);
  auto parent_meta = Stat(parent);
  if (!parent_meta.ok()) {
    return Status(StatusCode::kNotFound, "parent missing: " + parent);
  }
  if (!parent_meta->is_dir) {
    return Status(StatusCode::kInvalidArgument, "parent not a directory");
  }
  Status status = client_->Insert(MetaKey(path), meta.Encode());
  if (!status.ok()) return status;
  // Lock-free concurrent directory update: the append is the whole trick.
  return AppendDirEntry(parent, '+', BaseNameOf(path));
}

Status MetadataService::MkDir(const std::string& path) {
  FileMetadata meta;
  meta.is_dir = true;
  meta.mode = 0755;
  return CreateFile(path, meta);
}

Result<FileMetadata> MetadataService::Stat(const std::string& path) {
  auto raw = client_->Lookup(MetaKey(path));
  if (!raw.ok()) return raw.status();
  return FileMetadata::Decode(*raw);
}

Status MetadataService::Update(const std::string& path,
                               const FileMetadata& meta) {
  auto existing = Stat(path);
  if (!existing.ok()) return existing.status();
  return client_->Insert(MetaKey(path), meta.Encode());
}

Result<std::vector<std::string>> MetadataService::ReadDir(
    const std::string& path) {
  auto meta = Stat(path);
  if (!meta.ok()) return meta.status();
  if (!meta->is_dir) {
    return Status(StatusCode::kInvalidArgument, "not a directory");
  }
  auto log = client_->Lookup(DirKey(path));
  if (!log.ok()) {
    if (log.status().code() == StatusCode::kNotFound) {
      return std::vector<std::string>{};  // empty directory
    }
    return log.status();
  }
  // Fold the append log: "+name;" adds, "-name;" removes.
  std::vector<std::string> entries;
  std::size_t pos = 0;
  while (pos < log->size()) {
    std::size_t semi = log->find(';', pos);
    if (semi == std::string::npos) break;
    char op = (*log)[pos];
    std::string name = log->substr(pos + 1, semi - pos - 1);
    pos = semi + 1;
    if (op == '+') {
      if (std::find(entries.begin(), entries.end(), name) == entries.end()) {
        entries.push_back(name);
      }
    } else if (op == '-') {
      entries.erase(std::remove(entries.begin(), entries.end(), name),
                    entries.end());
    }
  }
  return entries;
}

Status MetadataService::Unlink(const std::string& path) {
  auto meta = Stat(path);
  if (!meta.ok()) return meta.status();
  if (meta->is_dir) {
    return Status(StatusCode::kInvalidArgument, "is a directory");
  }
  Status status = client_->Remove(MetaKey(path));
  if (!status.ok()) return status;
  return AppendDirEntry(ParentOf(path), '-', BaseNameOf(path));
}

Status MetadataService::RmDir(const std::string& path) {
  if (path == "/") {
    return Status(StatusCode::kInvalidArgument, "cannot remove root");
  }
  auto meta = Stat(path);
  if (!meta.ok()) return meta.status();
  if (!meta->is_dir) {
    return Status(StatusCode::kInvalidArgument, "not a directory");
  }
  auto entries = ReadDir(path);
  if (!entries.ok()) return entries.status();
  if (!entries->empty()) {
    return Status(StatusCode::kInvalidArgument, "directory not empty");
  }
  Status status = client_->Remove(MetaKey(path));
  if (!status.ok()) return status;
  client_->Remove(DirKey(path));  // drop the (empty-folding) append log
  return AppendDirEntry(ParentOf(path), '-', BaseNameOf(path));
}

Status MetadataService::Rename(const std::string& from,
                               const std::string& to) {
  auto meta = Stat(from);
  if (!meta.ok()) return meta.status();
  if (meta->is_dir) {
    // Directory renames would need subtree rewrites; FusionFS-style
    // metadata keeps paths as keys, so we restrict to files (documented).
    return Status(StatusCode::kNotSupported, "directory rename");
  }
  auto target_parent = Stat(ParentOf(to));
  if (!target_parent.ok() || !target_parent->is_dir) {
    return Status(StatusCode::kNotFound, "target parent missing");
  }
  Status status = client_->Insert(MetaKey(to), meta->Encode());
  if (!status.ok()) return status;
  status = AppendDirEntry(ParentOf(to), '+', BaseNameOf(to));
  if (!status.ok()) return status;
  status = client_->Remove(MetaKey(from));
  if (!status.ok()) return status;
  return AppendDirEntry(ParentOf(from), '-', BaseNameOf(from));
}

}  // namespace zht::fusionfs
