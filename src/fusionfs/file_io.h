// FusionFS data plane (§V.A): "every compute node serves all three roles:
// client, metadata server, and storage server". This layer stores file
// CONTENTS in ZHT as fixed-size blocks alongside the metadata, giving the
// POSIX-ish read/write/truncate surface FUSE would sit on. Block keys are
// "b:<path>:<index>"; the metadata's size field is the source of truth for
// EOF. Writers update blocks with plain inserts (block writes are
// idempotent), so the lock-free properties of the metadata layer carry
// over.
#pragma once

#include <cstdint>
#include <string>

#include "core/zht_client.h"
#include "fusionfs/metadata.h"

namespace zht::fusionfs {

struct FileIoOptions {
  std::size_t block_size = 64 * 1024;
};

class FileIo {
 public:
  FileIo(MetadataService* metadata, ZhtClient* client,
         FileIoOptions options = {})
      : metadata_(metadata), client_(client), options_(options) {}

  // Writes `data` at `offset`, extending the file (and zero-filling any
  // gap) as needed. The file must exist.
  Status Write(const std::string& path, std::uint64_t offset,
               std::string_view data);

  // Reads up to `length` bytes at `offset`; short reads at EOF.
  Result<std::string> Read(const std::string& path, std::uint64_t offset,
                           std::size_t length);

  // Reads the whole file.
  Result<std::string> ReadAll(const std::string& path);

  // Shrinks or zero-extends to `size`.
  Status Truncate(const std::string& path, std::uint64_t size);

  // Removes the file's blocks and metadata (Unlink + data).
  Status Delete(const std::string& path);

  std::size_t block_size() const { return options_.block_size; }

 private:
  std::string BlockKey(const std::string& path, std::uint64_t index) const {
    return "b:" + path + ":" + std::to_string(index);
  }

  Result<std::string> LoadBlock(const std::string& path,
                                std::uint64_t index) const;

  MetadataService* metadata_;
  ZhtClient* client_;
  FileIoOptions options_;
};

}  // namespace zht::fusionfs
