#include "sim/kvs_sim.h"

#include <bit>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace zht::sim {
namespace {

struct SimState {
  const KvsSimParams& params;
  Simulator& simulator;
  TorusNetwork network;
  Rng rng;

  std::uint64_t instances;
  std::vector<Nanos> busy_until;  // per instance

  // Per-node CPU oversubscription multiplier (server+client threads vs
  // cores), applied to all software costs on that node.
  double cpu_slowdown;

  // Stats.
  std::uint64_t ops_done = 0;
  Nanos latency_sum = 0;
  Nanos latency_max = 0;
  Nanos last_completion = 0;
  std::uint64_t messages = 0;
  std::uint64_t hops_sum = 0;
  std::uint64_t repl_messages = 0;
  std::uint64_t repl_hops_sum = 0;

  SimState(const KvsSimParams& p, Simulator& s)
      : params(p), simulator(s), network(p.num_nodes, p.torus), rng(p.seed) {
    instances =
        p.num_nodes * static_cast<std::uint64_t>(p.instances_per_node);
    busy_until.assign(instances, 0);
    double threads = 2.0 * p.instances_per_node;  // servers + clients
    double ratio = threads / static_cast<double>(p.cores_per_node);
    cpu_slowdown =
        ratio <= 1.0 ? 1.0 : std::pow(ratio, p.contention_exponent);
  }

  std::uint64_t NodeOf(std::uint64_t instance) const {
    return instance / params.instances_per_node;
  }

  Nanos Cpu(Nanos cost) const {
    return static_cast<Nanos>(static_cast<double>(cost) * cpu_slowdown);
  }

  Nanos Net(std::uint64_t from_instance, std::uint64_t to_instance,
            std::uint64_t bytes) {
    std::uint64_t a = NodeOf(from_instance), b = NodeOf(to_instance);
    hops_sum += network.Hops(a, b);
    ++messages;
    Nanos latency = network.Latency(a, b, bytes);
    if (cpu_slowdown > 1.0) {
      // Most of the endpoint base latency is software (IP stack, message
      // handling) executed on the node's oversubscribed cores; scale that
      // share with the contention factor (Figure 13's latency growth with
      // instances/node).
      Nanos base = a == b ? params.torus.base_latency / 4
                          : params.torus.base_latency;
      latency += static_cast<Nanos>((cpu_slowdown - 1.0) * 0.8 *
                                    static_cast<double>(base));
    }
    return latency;
  }

  // Occupies the instance's single thread starting no earlier than
  // `arrival` for `work`; returns completion time.
  Nanos Serve(std::uint64_t instance, Nanos arrival, Nanos work) {
    Nanos start = std::max(arrival, busy_until[instance]);
    Nanos end = start + work;
    busy_until[instance] = end;
    return end;
  }
};

// One client's closed-loop operation sequence.
class ClientLoop {
 public:
  ClientLoop(SimState* state, std::uint64_t client_instance)
      : state_(state), self_(client_instance) {}

  void Start() { NextOp(); }

 private:
  void NextOp() {
    if (ops_issued_ >= state_->params.ops_per_client) return;
    ++ops_issued_;
    const Nanos op_start = state_->simulator.now();

    const KvsSimParams& p = state_->params;
    std::uint64_t target = state_->rng.Below(state_->instances);
    std::uint64_t req_bytes = p.key_bytes + p.value_bytes + 24;
    std::uint64_t resp_bytes = 16;

    Nanos depart = op_start + state_->Cpu(p.client_cpu);
    if (p.protocol == SimProtocol::kZhtTcpNoCache) {
      // Connection establishment: a handshake round trip plus socket setup
      // cost on both ends, paid before the request can be sent.
      depart += state_->Net(self_, target, 64) +
                state_->Net(target, self_, 64) +
                state_->Cpu(p.conn_setup_cpu);
    }
    if (p.protocol == SimProtocol::kMemcached) {
      depart += state_->Cpu(p.memcached_extra_cpu) / 2;
    }

    if (p.protocol == SimProtocol::kCassandra) {
      RouteCassandra(op_start, depart, target, req_bytes, resp_bytes);
      return;
    }

    Nanos arrival = depart + state_->Net(self_, target, req_bytes);
    state_->simulator.At(arrival, [this, op_start, target, resp_bytes,
                                   arrival] {
      ServeAndRespond(op_start, target, arrival, resp_bytes);
    });
  }

  void ServeAndRespond(Nanos op_start, std::uint64_t target, Nanos arrival,
                       std::uint64_t resp_bytes) {
    const KvsSimParams& p = state_->params;
    Nanos work = state_->Cpu(p.server_cpu);
    if (p.protocol != SimProtocol::kMemcached) {
      work += state_->Cpu(p.disk_write);
    } else {
      work += state_->Cpu(p.memcached_extra_cpu) / 2;
    }

    // Replication (§III.H/J): the single-threaded primary serializes and
    // sends each replica copy before writing the response; copies apply
    // asynchronously at the replicas (their threads absorb the work later).
    int replicas =
        p.protocol == SimProtocol::kMemcached ? 0 : p.replicas;
    if (replicas >= static_cast<int>(state_->instances)) {
      replicas = static_cast<int>(state_->instances) - 1;  // distinct nodes
    }
    for (int r = 0; r < replicas; ++r) {
      work += state_->Cpu(p.forward_cpu);
    }
    Nanos end = state_->Serve(target, arrival, work);

    if (replicas > 0) {
      for (int r = 1; r <= replicas; ++r) {
        std::uint64_t replica =
            p.random_replica_placement
                ? state_->rng.Below(state_->instances)
                : (target + r) % state_->instances;
        state_->repl_hops_sum += state_->network.Hops(
            state_->NodeOf(target), state_->NodeOf(replica));
        ++state_->repl_messages;
        Nanos copy_arrival =
            end + state_->Net(target, replica,
                              p.key_bytes + p.value_bytes + 24);
        Nanos replica_work =
            state_->Cpu(p.server_cpu) + state_->Cpu(p.disk_write);
        if (r == 1 && p.sync_secondary) {
          // Strongly consistent secondary: the ack precedes the response.
          Nanos replica_done =
              state_->Serve(replica, copy_arrival, replica_work);
          Nanos ack = replica_done + state_->Net(replica, target, 16);
          end = std::max(end, ack);
          state_->busy_until[target] =
              std::max(state_->busy_until[target], end);
        } else {
          state_->simulator.At(copy_arrival, [this, replica, copy_arrival,
                                              replica_work] {
            state_->Serve(replica, copy_arrival, replica_work);
          });
        }
      }
    }

    Nanos back = end + state_->Net(target, self_, resp_bytes);
    state_->simulator.At(back, [this, op_start, back] {
      Complete(op_start, back);
    });
  }

  // Chord-style multi-hop routing: the coordinator the client contacted
  // forwards finger by finger until the owner executes.
  void RouteCassandra(Nanos op_start, Nanos depart, std::uint64_t coordinator,
                      std::uint64_t req_bytes, std::uint64_t resp_bytes) {
    const KvsSimParams& p = state_->params;
    std::uint64_t owner = state_->rng.Below(state_->instances);

    Nanos t = depart + state_->Net(self_, coordinator, req_bytes);
    std::uint64_t at = coordinator;
    // Forward along descending powers of two of the remaining distance.
    while (at != owner) {
      t = state_->Serve(at, t, state_->Cpu(p.cassandra_hop_cpu));
      std::uint64_t distance =
          (owner + state_->instances - at) % state_->instances;
      std::uint64_t step = std::bit_floor(distance);
      std::uint64_t next = (at + step) % state_->instances;
      t += state_->Net(at, next, req_bytes);
      at = next;
    }
    t = state_->Serve(owner, t,
                      state_->Cpu(p.cassandra_hop_cpu) +
                          state_->Cpu(p.server_cpu) +
                          state_->Cpu(p.disk_write));
    Nanos back = t + state_->Net(owner, self_, resp_bytes);
    state_->simulator.At(back, [this, op_start, back] {
      Complete(op_start, back);
    });
  }

  void Complete(Nanos op_start, Nanos now) {
    Nanos latency = now - op_start;
    ++state_->ops_done;
    state_->latency_sum += latency;
    state_->latency_max = std::max(state_->latency_max, latency);
    state_->last_completion = std::max(state_->last_completion, now);
    NextOp();
  }

  SimState* state_;
  std::uint64_t self_;
  std::uint32_t ops_issued_ = 0;
};

}  // namespace

KvsSimResult RunKvsSim(const KvsSimParams& params) {
  Simulator simulator;
  SimState state(params, simulator);

  std::vector<std::unique_ptr<ClientLoop>> clients;
  clients.reserve(state.instances);
  for (std::uint64_t i = 0; i < state.instances; ++i) {
    clients.push_back(std::make_unique<ClientLoop>(&state, i));
  }
  // Stagger client starts over one mean service time to avoid a lockstep
  // thundering herd at t=0 (real benchmarks ramp similarly).
  for (auto& client : clients) {
    simulator.After(static_cast<Nanos>(state.rng.Below(
                        static_cast<std::uint64_t>(params.server_cpu) + 1)),
                    [&client] { client->Start(); });
  }
  simulator.Run();

  KvsSimResult result;
  result.total_ops = state.ops_done;
  if (state.ops_done > 0) {
    result.mean_latency_ms =
        ToMillis(state.latency_sum) / static_cast<double>(state.ops_done);
    result.max_latency_ms = ToMillis(state.latency_max);
  }
  result.makespan_s = ToSeconds(state.last_completion);
  if (state.last_completion > 0) {
    result.throughput_ops = static_cast<double>(state.ops_done) /
                            ToSeconds(state.last_completion);
  }
  if (state.messages > 0) {
    result.mean_hops = static_cast<double>(state.hops_sum) /
                       static_cast<double>(state.messages);
  }
  result.messages = state.messages;
  if (state.repl_messages > 0) {
    result.mean_replication_hops =
        static_cast<double>(state.repl_hops_sum) /
        static_cast<double>(state.repl_messages);
  }
  result.replication_messages = state.repl_messages;
  return result;
}

}  // namespace zht::sim
