// 3D-torus network model after the IBM Blue Gene/P interconnect the paper
// measured on (§IV.C: "the Blue Gene/P network ... is a 3D Torus network,
// which does multi-hop routing ... one rack has 1024 nodes, any larger
// scale will involve more than one rack").
//
// Nodes are laid out on a near-cubic 3D grid with wraparound links;
// message latency = wire base + per-hop router cost × Manhattan-torus hop
// count + size/bandwidth + an extra penalty per rack boundary crossed.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace zht::sim {

// Calibrated against the paper's anchor points: ~0.6 ms round trip at
// 2 nodes, ~1.1 ms at 8K nodes (Fig. 7), ~7 ms at 1M nodes (Fig. 11's
// simulation, "8% efficiency implies about 7 ms").
struct TorusParams {
  Nanos base_latency = 435 * kNanosPerMicro;   // endpoint NIC/software cost
  Nanos per_hop = 5 * kNanosPerMicro;          // router traversal
  double bytes_per_nano = 0.425;                // ≈ 425 MB/s per link (BG/P)
  std::uint32_t rack_size = 1024;               // nodes per rack
  Nanos rack_crossing = 10 * kNanosPerMicro;     // per rack-ring hop
};

class TorusNetwork {
 public:
  explicit TorusNetwork(std::uint64_t nodes, TorusParams params = {});

  std::uint64_t nodes() const { return nodes_; }
  std::uint32_t dim_x() const { return dx_; }
  std::uint32_t dim_y() const { return dy_; }
  std::uint32_t dim_z() const { return dz_; }

  // Manhattan distance on the torus (each axis wraps).
  std::uint32_t Hops(std::uint64_t from, std::uint64_t to) const;

  // Racks are contiguous id blocks of rack_size nodes cabled in a ring;
  // returns the wraparound rack distance (0 within one rack).
  std::uint32_t RackCrossings(std::uint64_t from, std::uint64_t to) const;

  // One-way latency for a message of `bytes`.
  Nanos Latency(std::uint64_t from, std::uint64_t to,
                std::uint64_t bytes) const;

  // Average hop count for uniformly random endpoint pairs (closed form:
  // sum over axes of d/4, the mean wrap-around distance).
  double MeanHops() const;

 private:
  void Coordinates(std::uint64_t node, std::uint32_t* x, std::uint32_t* y,
                   std::uint32_t* z) const;
  static std::uint32_t AxisDistance(std::uint32_t a, std::uint32_t b,
                                    std::uint32_t dim);

  std::uint64_t nodes_;
  TorusParams params_;
  std::uint32_t dx_, dy_, dz_;
};

}  // namespace zht::sim
