// Discrete-event simulation core. The paper validates ZHT beyond its 8K-node
// testbed with a PeerSim-based simulator (§IV.E, Figure 11); this engine
// plays that role here. Virtual time only — no wall-clock anywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace zht::sim {

class Simulator {
 public:
  Nanos now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }

  // Schedules `fn` at absolute virtual time `at` (>= now).
  void At(Nanos at, std::function<void()> fn) {
    queue_.push(Event{at < now_ ? now_ : at, next_seq_++, std::move(fn)});
  }

  void After(Nanos delay, std::function<void()> fn) {
    At(now_ + delay, std::move(fn));
  }

  // Runs one event; returns false when the queue is empty.
  bool Step() {
    if (queue_.empty()) return false;
    // The handler may schedule more events; pop first.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
    return true;
  }

  // Runs to quiescence (or until `max_events`, a runaway guard).
  void Run(std::uint64_t max_events = ~0ull) {
    std::uint64_t budget = max_events;
    while (budget-- && Step()) {
    }
  }

 private:
  struct Event {
    Nanos time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  Nanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace zht::sim
