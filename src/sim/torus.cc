#include "sim/torus.h"

#include <cmath>

namespace zht::sim {

TorusNetwork::TorusNetwork(std::uint64_t nodes, TorusParams params)
    : nodes_(nodes ? nodes : 1), params_(params) {
  // Near-cubic dims with dx*dy*dz >= nodes, dx <= dy <= dz.
  double cube = std::cbrt(static_cast<double>(nodes_));
  dx_ = static_cast<std::uint32_t>(cube);
  if (dx_ == 0) dx_ = 1;
  while (static_cast<std::uint64_t>(dx_) * dx_ * dx_ > nodes_ && dx_ > 1) {
    --dx_;
  }
  dy_ = dx_;
  while (static_cast<std::uint64_t>(dx_) * dy_ * dy_ < nodes_) ++dy_;
  while (static_cast<std::uint64_t>(dx_) * dy_ * dy_ > nodes_ && dy_ > dx_) {
    --dy_;
  }
  dz_ = dy_;
  while (static_cast<std::uint64_t>(dx_) * dy_ * dz_ < nodes_) ++dz_;
}

void TorusNetwork::Coordinates(std::uint64_t node, std::uint32_t* x,
                               std::uint32_t* y, std::uint32_t* z) const {
  *x = static_cast<std::uint32_t>(node % dx_);
  *y = static_cast<std::uint32_t>((node / dx_) % dy_);
  *z = static_cast<std::uint32_t>(node / (static_cast<std::uint64_t>(dx_) *
                                          dy_));
}

std::uint32_t TorusNetwork::AxisDistance(std::uint32_t a, std::uint32_t b,
                                         std::uint32_t dim) {
  std::uint32_t d = a > b ? a - b : b - a;
  return d < dim - d ? d : dim - d;  // wraparound
}

std::uint32_t TorusNetwork::Hops(std::uint64_t from, std::uint64_t to) const {
  if (from == to) return 0;
  std::uint32_t x1, y1, z1, x2, y2, z2;
  Coordinates(from, &x1, &y1, &z1);
  Coordinates(to, &x2, &y2, &z2);
  std::uint32_t hops = AxisDistance(x1, x2, dx_) +
                       AxisDistance(y1, y2, dy_) +
                       AxisDistance(z1, z2, dz_);
  return hops == 0 ? 1 : hops;  // distinct nodes are ≥ 1 hop apart
}

std::uint32_t TorusNetwork::RackCrossings(std::uint64_t from,
                                          std::uint64_t to) const {
  std::uint64_t rack_a = from / params_.rack_size;
  std::uint64_t rack_b = to / params_.rack_size;
  if (rack_a == rack_b) return 0;
  std::uint64_t racks =
      (nodes_ + params_.rack_size - 1) / params_.rack_size;
  std::uint64_t d = rack_a > rack_b ? rack_a - rack_b : rack_b - rack_a;
  std::uint64_t wrapped = racks - d;
  return static_cast<std::uint32_t>(d < wrapped ? d : wrapped);
}

Nanos TorusNetwork::Latency(std::uint64_t from, std::uint64_t to,
                            std::uint64_t bytes) const {
  if (from == to) {
    // Loopback within the node: software cost only.
    return params_.base_latency / 4;
  }
  Nanos wire = static_cast<Nanos>(static_cast<double>(bytes) /
                                  params_.bytes_per_nano);
  return params_.base_latency + params_.per_hop * Hops(from, to) +
         params_.rack_crossing * RackCrossings(from, to) + wire;
}

double TorusNetwork::MeanHops() const {
  auto mean_axis = [](std::uint32_t d) {
    return d <= 1 ? 0.0 : static_cast<double>(d) / 4.0;
  };
  double mean = mean_axis(dx_) + mean_axis(dy_) + mean_axis(dz_);
  return mean < 1.0 ? 1.0 : mean;
}

}  // namespace zht::sim
