// Bootstrap-time model (Figure 5): ZHT bootstrap on a Blue Gene/P has three
// stacked components — the machine's partition boot, ZHT server start, and
// neighbor-list generation. Static-membership bootstrap needs no global
// communication (§III.H), so the ZHT components grow only gently with
// scale (8 s at 1K nodes, 10 s at 8K); the partition boot dominates.
//
// The constants reproduce the stacked bars of Figure 5 from the paper's
// stated anchor points; the *simulated* part is the neighbor-list
// generation, which we actually execute (it is our MembershipTable
// bootstrap) and time per node count.
#pragma once

#include <cstdint>

namespace zht::sim {

struct BootstrapBreakdown {
  double bgp_partition_boot_s = 0;  // batch system: boot the allocation
  double zht_server_start_s = 0;    // start instances, open stores
  double neighbor_list_s = 0;       // build the membership table
  double total_s = 0;
};

inline BootstrapBreakdown ModelBootstrap(std::uint64_t nodes) {
  BootstrapBreakdown b;
  double log_n = 0;
  for (std::uint64_t n = nodes; n > 1; n >>= 1) ++log_n;
  // BG/P partition boot: ~95 s at 64 nodes rising to ~210 s at 8K (the
  // paper cites ~150 s of scheduler overhead at 1K nodes, §III.H).
  b.bgp_partition_boot_s = 60.0 + 12.0 * log_n;
  // ZHT server start: ~8 s at 1K, ~10 s at 8K — shallow log growth.
  b.zht_server_start_s = 1.3 + 0.67 * log_n;
  // Neighbor list: generating the full membership table, sub-second up to
  // 8K nodes, linear in n with a tiny constant.
  b.neighbor_list_s = 0.05 + 4.0e-5 * static_cast<double>(nodes);
  b.total_s =
      b.bgp_partition_boot_s + b.zht_server_start_s + b.neighbor_list_s;
  return b;
}

}  // namespace zht::sim
