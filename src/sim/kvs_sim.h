// Closed-loop key/value-store simulation on the torus network: the model
// behind the paper's large-scale results (Figures 7, 9, 11, 12, 13, 14).
//
// Every node runs `instances_per_node` single-threaded server instances and
// an equal number of benchmark clients (the paper's 1:1 deployment). Each
// client issues `ops_per_client` operations sequentially to uniformly
// random instances (the all-to-all pattern of §IV.A). Latency emerges from
// endpoint software cost (scaled by core oversubscription), torus hop and
// rack-crossing delays, per-message wire time, server queueing, and the
// protocol's extra messages (connection setup, replication forwards,
// multi-hop routing).
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "sim/torus.h"

namespace zht::sim {

enum class SimProtocol {
  kZhtTcpCached,   // LRU-cached connections: the headline configuration
  kZhtTcpNoCache,  // connection establishment on every request
  kZhtUdp,         // ack-based UDP
  kMemcached,      // heavier fixed per-op cost, no disk, no replication
  kCassandra,      // log(N) finger routing + heavier stack
};

struct KvsSimParams {
  std::uint64_t num_nodes = 2;
  std::uint32_t instances_per_node = 1;
  std::uint32_t ops_per_client = 16;
  int replicas = 0;
  bool sync_secondary = false;  // paper's measured config replicates async
  // §III.H/§VI: replicas default to ring successors, which are also
  // torus-adjacent ("communicating only with neighbors in close proximity
  // ... will ensure that replicas consume the least amount of shared
  // network resources"). Setting this true scatters them randomly — the
  // topology-unaware ablation.
  bool random_replica_placement = false;
  SimProtocol protocol = SimProtocol::kZhtTcpCached;

  TorusParams torus;

  // ---- Endpoint model (defaults calibrated against the paper's BG/P
  //      numbers; see bench_fig7_latency_bgp for the calibration notes) ---
  std::uint32_t cores_per_node = 4;      // BG/P: 4-core PowerPC 450
  double contention_exponent = 1.05;     // oversubscription penalty shape
  Nanos client_cpu = 30 * kNanosPerMicro;
  Nanos server_cpu = 40 * kNanosPerMicro;
  Nanos disk_write = 10 * kNanosPerMicro;   // ramdisk WAL append
  Nanos forward_cpu = 150 * kNanosPerMicro;  // serialize+send one replica
  Nanos conn_setup_cpu = 120 * kNanosPerMicro;  // socket setup both ends
  // Memcached's fixed stack cost (its BG/P latency floor, §IV.C Fig. 7).
  Nanos memcached_extra_cpu = 650 * kNanosPerMicro;
  // CassandraLite per-hop handling (JVM/staged pipeline stand-in).
  Nanos cassandra_hop_cpu = 300 * kNanosPerMicro;

  std::uint64_t key_bytes = 15;    // §IV.A workload
  std::uint64_t value_bytes = 132;
  std::uint64_t seed = 20130521;
};

struct KvsSimResult {
  std::uint64_t total_ops = 0;
  double mean_latency_ms = 0;
  double max_latency_ms = 0;
  double makespan_s = 0;
  double throughput_ops = 0;
  double mean_hops = 0;            // network model diagnostic
  std::uint64_t messages = 0;      // all messages incl. replication/routing
  double mean_replication_hops = 0;  // hops of replica-copy messages only
  std::uint64_t replication_messages = 0;
};

KvsSimResult RunKvsSim(const KvsSimParams& params);

}  // namespace zht::sim
