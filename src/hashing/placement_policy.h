// PlacementPolicy: pluggable partition→instance placement. The membership
// table's ownership vector stays the single routing source of truth (clients
// and servers never consult a policy on the data path — zero-hop routing is
// unchanged); a policy only answers "which live instance SHOULD own partition
// p", and the manager diffs that desired assignment against the current table
// on joins/departures and migrates exactly the differing partitions. The
// whole-partition migration and redirect machinery is therefore identical
// for every policy.
//
// Three policies:
//  - contiguous: the paper's §III.C layout — a balanced, contiguous even
//    split of the partition range over the live instances in id order.
//    Simple and perfectly balanced, but a join shifts every boundary, so
//    ~half the partitions change owner.
//  - memento: MementoHash-style minimal-churn consistent hashing
//    (arXiv:2306.09783): jump consistent hash over the bucket universe
//    [0, max live id + 1), with a deterministic replacement walk past dead
//    buckets. A join at a fresh (highest) id moves only ~n/(k+1) partitions,
//    all onto the newcomer; a death moves only the victim's partitions; a
//    rejoin restores exactly its old partitions.
//  - rendezvous: highest-random-weight hashing — each partition goes to the
//    live instance with the largest mixed hash of (partition, instance).
//    Also minimal-churn (~n/(k+1) per join) and fully order-independent.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hashing/partition_space.h"

namespace zht {

enum class PlacementKind : std::uint8_t {
  kContiguous = 0,
  kMemento = 1,
  kRendezvous = 2,
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual PlacementKind kind() const = 0;
  virtual std::string_view name() const = 0;

  // The live instance that should own partition p. `live` is the sorted list
  // of alive instance ids (membership-table ids; indices into its instance
  // vector) and must be non-empty. Deterministic in (p, num_partitions,
  // live) — all callers agree without coordination.
  virtual std::uint32_t DesiredOwner(
      PartitionId p, std::uint32_t num_partitions,
      const std::vector<std::uint32_t>& live) const = 0;

  // Upper bound (with slack, for property tests) on the fraction of
  // partitions expected to change owner when one instance joins
  // `live_before` live ones.
  virtual double MaxMoveFractionOnJoin(std::size_t live_before) const = 0;
};

// Shared, stateless singletons; valid for the process lifetime.
const PlacementPolicy& GetPlacementPolicy(PlacementKind kind);

std::string_view PlacementKindName(PlacementKind kind);
Result<PlacementKind> ParsePlacementKind(std::string_view name);

}  // namespace zht
