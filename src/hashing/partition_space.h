// Fixed-partition key space (§III.B): the 64-bit name space N is divided
// into n equal, contiguous partitions, where n is fixed at bootstrap and is
// the maximum number of instances the deployment can ever grow to. Keys map
// to partitions forever; only partition→instance ownership changes.
#pragma once

#include <cstdint>
#include <string_view>

#include "hashing/hash_functions.h"

namespace zht {

using PartitionId = std::uint32_t;

class PartitionSpace {
 public:
  // num_partitions must be > 0. The paper's example: 1000 initial instances
  // with 1000 partitions each → n = 1,000,000.
  explicit PartitionSpace(std::uint32_t num_partitions,
                          HashKind hash = HashKind::kFnv1a)
      : num_partitions_(num_partitions), hash_(hash) {}

  std::uint32_t num_partitions() const { return num_partitions_; }
  HashKind hash_kind() const { return hash_; }

  // Partition owning a raw ring position.
  PartitionId PartitionOfHash(std::uint64_t hash) const {
    // Multiply-shift mapping: hash * n / 2^64, computed via 128-bit product.
    // Contiguous hash ranges map to contiguous partitions, which is what
    // makes a partition a contiguous range of the key address space.
    return static_cast<PartitionId>(
        (static_cast<unsigned __int128>(hash) * num_partitions_) >> 64);
  }

  PartitionId PartitionOfKey(std::string_view key) const {
    return PartitionOfHash(HashKey(key, hash_));
  }

  // Inclusive lower bound of a partition's hash range: the smallest h with
  // PartitionOfHash(h) == p, i.e. ceil(p * 2^64 / n).
  std::uint64_t RangeBegin(PartitionId p) const {
    return static_cast<std::uint64_t>(
        ((static_cast<unsigned __int128>(p) << 64) + num_partitions_ - 1) /
        num_partitions_);
  }

  // Exclusive upper bound (0 means wrap for the last partition).
  std::uint64_t RangeEnd(PartitionId p) const {
    if (p + 1 == num_partitions_) return 0;  // wraps to 2^64
    return RangeBegin(p + 1);
  }

 private:
  std::uint32_t num_partitions_;
  HashKind hash_;
};

}  // namespace zht
