#include "hashing/hash_quality.h"

#include <bit>
#include <utility>

namespace zht {

double ChiSquared(const std::vector<std::string>& keys,
                  std::uint32_t num_buckets, HashKind kind) {
  std::vector<std::uint64_t> counts(num_buckets, 0);
  for (const auto& key : keys) {
    counts[HashKey(key, kind) % num_buckets]++;
  }
  const double expected =
      static_cast<double>(keys.size()) / static_cast<double>(num_buckets);
  double chi2 = 0.0;
  for (std::uint64_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

double AvalancheScore(const std::vector<std::string>& keys, HashKind kind) {
  if (keys.empty()) return 0.0;
  std::uint64_t flipped_bits = 0;
  std::uint64_t trials = 0;
  for (const auto& key : keys) {
    if (key.empty()) continue;
    const std::uint64_t base = HashKey(key, kind);
    // Flip each bit of the first and last byte (enough signal, cheap).
    for (std::size_t pos : {std::size_t{0}, key.size() - 1}) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = key;
        mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
        flipped_bits += std::popcount(base ^ HashKey(mutated, kind));
        trials += 64;
      }
    }
  }
  return trials == 0 ? 0.0
                     : static_cast<double>(flipped_bits) /
                           static_cast<double>(trials);
}

double PermutationSensitivity(const std::vector<std::string>& keys,
                              HashKind kind) {
  std::uint64_t changed = 0;
  std::uint64_t trials = 0;
  for (const auto& key : keys) {
    const std::uint64_t base = HashKey(key, kind);
    for (std::size_t i = 0; i + 1 < key.size(); ++i) {
      if (key[i] == key[i + 1]) continue;  // swap is a no-op
      std::string mutated = key;
      std::swap(mutated[i], mutated[i + 1]);
      if (HashKey(mutated, kind) != base) ++changed;
      ++trials;
    }
  }
  return trials == 0 ? 1.0
                     : static_cast<double>(changed) /
                           static_cast<double>(trials);
}

}  // namespace zht
