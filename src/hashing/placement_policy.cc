#include "hashing/placement_policy.h"

#include <algorithm>

namespace zht {
namespace {

// SplitMix64 finalizer: cheap, well-distributed 64-bit mixer.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Lamping & Veach jump consistent hash: maps `key` to a bucket in
// [0, num_buckets) such that growing the bucket count from u to u+1 moves
// exactly the keys that land in the new bucket (1/(u+1) of them).
std::uint32_t JumpConsistentHash(std::uint64_t key, std::uint32_t num_buckets) {
  std::int64_t b = -1;
  std::int64_t j = 0;
  while (j < static_cast<std::int64_t>(num_buckets)) {
    b = j;
    key = key * 2862933555777941757ULL + 1;
    j = static_cast<std::int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<std::uint32_t>(b);
}

bool IsLive(const std::vector<std::uint32_t>& live, std::uint32_t id) {
  return std::binary_search(live.begin(), live.end(), id);
}

class ContiguousPolicy final : public PlacementPolicy {
 public:
  PlacementKind kind() const override { return PlacementKind::kContiguous; }
  std::string_view name() const override { return "contiguous"; }

  std::uint32_t DesiredOwner(
      PartitionId p, std::uint32_t num_partitions,
      const std::vector<std::uint32_t>& live) const override {
    // Balanced even contiguous split over the live instances in id order
    // (the bootstrap layout of §III.C, re-evaluated over survivors).
    const std::uint64_t k = live.size();
    return live[static_cast<std::size_t>(
        static_cast<std::uint64_t>(p) * k / num_partitions)];
  }

  double MaxMoveFractionOnJoin(std::size_t /*live_before*/) const override {
    return 1.0;  // a join shifts every boundary; up to all partitions move
  }
};

class MementoPolicy final : public PlacementPolicy {
 public:
  PlacementKind kind() const override { return PlacementKind::kMemento; }
  std::string_view name() const override { return "memento"; }

  std::uint32_t DesiredOwner(
      PartitionId p, std::uint32_t /*num_partitions*/,
      const std::vector<std::uint32_t>& live) const override {
    // Bucket universe covers every id up to the highest live one; the
    // universe only ever shrinks from the end (jump hash handles that
    // minimally), interior dead ids are walked past deterministically.
    const std::uint32_t universe = live.back() + 1;
    const std::uint64_t h = Mix64(static_cast<std::uint64_t>(p) + 1);
    const std::uint32_t base = JumpConsistentHash(h, universe);
    if (IsLive(live, base)) return base;
    // Deterministic replacement walk seeded by (partition, base bucket):
    // the first live candidate wins. Reviving a bucket restores exactly
    // the partitions whose base (or earlier walk step) it is.
    std::uint64_t state = Mix64(h ^ Mix64(base));
    const std::uint64_t max_steps = 4ULL * universe + 16;
    for (std::uint64_t i = 0; i < max_steps; ++i) {
      state = Mix64(state);
      const std::uint32_t candidate =
          static_cast<std::uint32_t>(state % universe);
      if (IsLive(live, candidate)) return candidate;
    }
    // Unreached in practice (the walk finds a live bucket long before the
    // cap); deterministic ring-successor fallback keeps the contract.
    auto it = std::upper_bound(live.begin(), live.end(), base);
    return it == live.end() ? live.front() : *it;
  }

  double MaxMoveFractionOnJoin(std::size_t live_before) const override {
    // Expected n/(k+1); 3x slack absorbs hash variance at small n.
    return std::min(1.0, 3.0 / (static_cast<double>(live_before) + 1.0));
  }
};

class RendezvousPolicy final : public PlacementPolicy {
 public:
  PlacementKind kind() const override { return PlacementKind::kRendezvous; }
  std::string_view name() const override { return "rendezvous"; }

  std::uint32_t DesiredOwner(
      PartitionId p, std::uint32_t /*num_partitions*/,
      const std::vector<std::uint32_t>& live) const override {
    const std::uint64_t ph = Mix64(static_cast<std::uint64_t>(p) + 1);
    std::uint32_t best = live.front();
    std::uint64_t best_score = 0;
    for (std::uint32_t id : live) {
      const std::uint64_t score =
          Mix64(ph ^ Mix64(static_cast<std::uint64_t>(id) + 0x517cc1b7ULL));
      if (score > best_score || (score == best_score && id < best)) {
        best = id;
        best_score = score;
      }
    }
    return best;
  }

  double MaxMoveFractionOnJoin(std::size_t live_before) const override {
    return std::min(1.0, 3.0 / (static_cast<double>(live_before) + 1.0));
  }
};

}  // namespace

const PlacementPolicy& GetPlacementPolicy(PlacementKind kind) {
  static const ContiguousPolicy contiguous;
  static const MementoPolicy memento;
  static const RendezvousPolicy rendezvous;
  switch (kind) {
    case PlacementKind::kMemento:
      return memento;
    case PlacementKind::kRendezvous:
      return rendezvous;
    case PlacementKind::kContiguous:
      break;
  }
  return contiguous;
}

std::string_view PlacementKindName(PlacementKind kind) {
  return GetPlacementPolicy(kind).name();
}

Result<PlacementKind> ParsePlacementKind(std::string_view name) {
  if (name == "contiguous") return PlacementKind::kContiguous;
  if (name == "memento") return PlacementKind::kMemento;
  if (name == "rendezvous") return PlacementKind::kRendezvous;
  return Status(StatusCode::kInvalidArgument,
                "unknown placement policy: " + std::string(name) +
                    " (expected contiguous|memento|rendezvous)");
}

}  // namespace zht
