#include "hashing/hash_functions.h"

#include <cstring>

namespace zht {

std::uint32_t Fnv1a32(std::string_view data) {
  std::uint32_t hash = 0x811c9dc5u;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x01000193u;
  }
  return hash;
}

std::uint64_t Fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

inline std::uint32_t Rot(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

#define ZHT_JENKINS_MIX(a, b, c) \
  do {                           \
    a -= c;                      \
    a ^= Rot(c, 4);              \
    c += b;                      \
    b -= a;                      \
    b ^= Rot(a, 6);              \
    a += c;                      \
    c -= b;                      \
    c ^= Rot(b, 8);              \
    b += a;                      \
    a -= c;                      \
    a ^= Rot(c, 16);             \
    c += b;                      \
    b -= a;                      \
    b ^= Rot(a, 19);             \
    a += c;                      \
    c -= b;                      \
    c ^= Rot(b, 4);              \
    b += a;                      \
  } while (0)

#define ZHT_JENKINS_FINAL(a, b, c) \
  do {                             \
    c ^= b;                        \
    c -= Rot(b, 14);               \
    a ^= c;                        \
    a -= Rot(c, 11);               \
    b ^= a;                        \
    b -= Rot(a, 25);               \
    c ^= b;                        \
    c -= Rot(b, 16);               \
    a ^= c;                        \
    a -= Rot(c, 4);                \
    b ^= a;                        \
    b -= Rot(a, 14);               \
    c ^= b;                        \
    c -= Rot(b, 24);               \
  } while (0)

// lookup3 hashlittle over byte-aligned input (we copy tails; key sizes are
// small so the memcpy path is fine and avoids unaligned reads).
void JenkinsCore(std::string_view data, std::uint32_t* pb, std::uint32_t* pc) {
  const std::uint8_t* k = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t length = data.size();
  std::uint32_t a, b, c;
  a = b = c = 0xdeadbeefu + static_cast<std::uint32_t>(length) + *pc;
  c += *pb;

  while (length > 12) {
    std::uint32_t w[3];
    std::memcpy(w, k, 12);
    a += w[0];
    b += w[1];
    c += w[2];
    ZHT_JENKINS_MIX(a, b, c);
    length -= 12;
    k += 12;
  }

  std::uint8_t tail[12] = {0};
  std::memcpy(tail, k, length);
  std::uint32_t w[3];
  std::memcpy(w, tail, 12);
  if (length > 0) {
    a += w[0];
    b += w[1];
    c += w[2];
    ZHT_JENKINS_FINAL(a, b, c);
  }
  *pb = b;
  *pc = c;
}

#undef ZHT_JENKINS_MIX
#undef ZHT_JENKINS_FINAL

}  // namespace

std::uint32_t Jenkins32(std::string_view data, std::uint32_t seed) {
  std::uint32_t b = seed, c = seed;
  JenkinsCore(data, &b, &c);
  return c;
}

std::uint64_t Jenkins64(std::string_view data, std::uint64_t seed) {
  std::uint32_t b = static_cast<std::uint32_t>(seed >> 32);
  std::uint32_t c = static_cast<std::uint32_t>(seed);
  JenkinsCore(data, &b, &c);
  return (static_cast<std::uint64_t>(b) << 32) | c;
}

std::uint32_t OneAtATime32(std::string_view data) {
  std::uint32_t hash = 0;
  for (unsigned char ch : data) {
    hash += ch;
    hash += hash << 10;
    hash ^= hash >> 6;
  }
  hash += hash << 3;
  hash ^= hash >> 11;
  hash += hash << 15;
  return hash;
}

std::uint64_t Mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t HashKey(std::string_view key, HashKind kind) {
  switch (kind) {
    case HashKind::kFnv1a:
      // Raw FNV-1a has weak avalanche in the high bits for short, similar
      // keys, and the ring's multiply-shift partition map consumes exactly
      // those bits — finalize with a full-width mix.
      return Mix64(Fnv1a64(key));
    case HashKind::kJenkins:
      return Jenkins64(key);
    case HashKind::kOneAtATime:
      return Mix64(OneAtATime32(key));
  }
  return Mix64(Fnv1a64(key));
}

}  // namespace zht
