// Hash functions evaluated in the paper (§III.E): FNV and Bob Jenkins'
// lookup3 are the ones ZHT ships with; one-at-a-time is included as a
// reference implementation for the quality harness. The hash used by the
// consistent-hashing layer is customizable via HashKind.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace zht {

// FNV-1a, 32-bit.
std::uint32_t Fnv1a32(std::string_view data);

// FNV-1a, 64-bit. Default key hash for the ring (uniform, fast, simple).
std::uint64_t Fnv1a64(std::string_view data);

// Bob Jenkins' lookup3 (hashlittle), 32-bit.
std::uint32_t Jenkins32(std::string_view data, std::uint32_t seed = 0);

// Jenkins lookup3 used twice (hashlittle2) to form a 64-bit value.
std::uint64_t Jenkins64(std::string_view data, std::uint64_t seed = 0);

// Bob Jenkins' one-at-a-time (reference-quality, slower).
std::uint32_t OneAtATime32(std::string_view data);

enum class HashKind { kFnv1a, kJenkins, kOneAtATime };

// Dispatch to a 64-bit hash of the selected kind (32-bit functions are
// widened by mixing).
std::uint64_t HashKey(std::string_view key, HashKind kind = HashKind::kFnv1a);

// Final avalanche mix (splitmix64 finalizer); useful to widen 32-bit hashes
// and to decorrelate sequential ids.
std::uint64_t Mix64(std::uint64_t x);

}  // namespace zht
