// Hash-quality measurement helpers used by the test suite to verify the
// properties the paper demands of its hash functions (§III.E): uniform
// distribution, avalanche effect, permutation sensitivity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hashing/hash_functions.h"

namespace zht {

// Chi-squared statistic of bucket occupancy for `keys` hashed into
// `num_buckets` buckets. For a uniform hash this is ~num_buckets.
double ChiSquared(const std::vector<std::string>& keys,
                  std::uint32_t num_buckets, HashKind kind);

// Average fraction of output bits that flip when a single input bit flips
// (ideal: 0.5). Sampled over the provided keys.
double AvalancheScore(const std::vector<std::string>& keys, HashKind kind);

// Fraction of adjacent-character swaps that change the hash (ideal: 1.0).
double PermutationSensitivity(const std::vector<std::string>& keys,
                              HashKind kind);

}  // namespace zht
