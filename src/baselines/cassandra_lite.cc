#include "baselines/cassandra_lite.h"

#include <bit>
#include <thread>

#include "hashing/hash_functions.h"

namespace zht {

CassandraLiteNode::CassandraLiteNode(const CassandraLiteOptions& options,
                                     std::vector<NodeAddress> ring,
                                     ClientTransport* transport)
    : options_(options), ring_(std::move(ring)), transport_(transport) {
  // Finger i → node 2^i positions clockwise (Chord on evenly spaced
  // tokens). Routing resolves any distance in ≤ log2(M) hops.
  for (std::uint32_t step = 1; step < options_.ring_size; step <<= 1) {
    fingers_.push_back((options_.self + step) % options_.ring_size);
  }
}

std::uint64_t CassandraLiteNode::TokenOf(std::uint32_t index,
                                         std::uint32_t ring_size) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(index) << 64) / ring_size);
}

std::uint32_t CassandraLiteNode::OwnerOf(std::uint64_t hash) const {
  // Owner = node with the first token ≥ hash (wrapping): with evenly
  // spaced tokens that is ceil(hash * M / 2^64) mod M.
  unsigned __int128 scaled =
      static_cast<unsigned __int128>(hash) * options_.ring_size;
  std::uint32_t idx = static_cast<std::uint32_t>(scaled >> 64);
  if (TokenOf(idx, options_.ring_size) < hash) ++idx;
  return idx % options_.ring_size;
}

std::uint32_t CassandraLiteNode::NextHopTowards(
    std::uint32_t target_owner) const {
  std::uint32_t distance =
      (target_owner + options_.ring_size - options_.self) %
      options_.ring_size;
  // Largest finger step ≤ distance.
  std::uint32_t step = std::bit_floor(distance);
  return (options_.self + step) % options_.ring_size;
}

Response CassandraLiteNode::Forward(std::uint32_t node, Request&& request) {
  ++forwards_;
  auto result =
      transport_->Call(ring_[node], request, options_.peer_timeout);
  if (!result.ok()) {
    Response resp;
    resp.seq = request.seq;
    resp.status = Status(StatusCode::kNetwork).raw();
    return resp;
  }
  return *result;
}

Response CassandraLiteNode::ExecuteLocal(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  if (options_.per_op_overhead > 0) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.per_op_overhead));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++executed_;
    switch (request.op) {
      case OpCode::kInsert:
        resp.status = store_.Put(request.key, request.value).raw();
        break;
      case OpCode::kRemove:
        resp.status = store_.Remove(request.key).raw();
        break;
      case OpCode::kLookup: {
        auto value = store_.Get(request.key);
        if (!value.ok()) {
          resp.status = value.status().raw();
        } else {
          resp.value = std::move(*value);
        }
        break;
      }
      default:
        resp.status = Status(StatusCode::kNotSupported).raw();
        return resp;
    }
  }

  const bool is_replica_write = request.server_origin;
  if (is_replica_write) return resp;

  // Synchronous replication to RF-1 ring successors ("always writable" at
  // the coordinator; consistency resolved later at read time).
  if (request.op != OpCode::kLookup && resp.ok()) {
    for (int r = 1; r < options_.replication_factor; ++r) {
      Request copy = request;
      copy.seq = next_seq_++;
      copy.server_origin = true;
      copy.replica_index = static_cast<std::uint8_t>(r);
      std::uint32_t replica =
          (options_.self + static_cast<std::uint32_t>(r)) %
          options_.ring_size;
      Forward(replica, std::move(copy));
    }
  }

  // Read repair: consult one replica and reconcile on mismatch (the
  // "different levels of consistency on reads" cost the paper describes).
  if (request.op == OpCode::kLookup && options_.read_repair &&
      options_.replication_factor > 1) {
    Request probe;
    probe.op = OpCode::kLookup;
    probe.seq = next_seq_++;
    probe.key = request.key;
    probe.server_origin = true;
    std::uint32_t replica = (options_.self + 1) % options_.ring_size;
    Response other = Forward(replica, std::move(probe));
    if (other.ok() && other.value != resp.value && resp.ok()) {
      Request repair;
      repair.op = OpCode::kInsert;
      repair.seq = next_seq_++;
      repair.key = request.key;
      repair.value = resp.value;
      repair.server_origin = true;
      Forward(replica, std::move(repair));
    }
  }
  return resp;
}

Response CassandraLiteNode::Handle(Request&& request) {
  switch (request.op) {
    case OpCode::kInsert:
    case OpCode::kLookup:
    case OpCode::kRemove:
      break;
    case OpCode::kPing: {
      Response resp;
      resp.seq = request.seq;
      return resp;
    }
    default: {
      Response resp;
      resp.seq = request.seq;
      resp.status = Status(StatusCode::kNotSupported).raw();
      return resp;
    }
  }

  if (request.server_origin) return ExecuteLocal(std::move(request));

  std::uint32_t owner = OwnerOf(HashKey(request.key, HashKind::kFnv1a));
  if (owner == options_.self) return ExecuteLocal(std::move(request));
  // Logarithmic routing: one finger hop closer per forward.
  return Forward(NextHopTowards(owner), std::move(request));
}

Result<Response> CassandraLiteClient::Execute(OpCode op, std::string_view key,
                                              std::string_view value) {
  Request request;
  request.op = op;
  request.seq = next_seq_++;
  request.key.assign(key);
  request.value.assign(value);
  const NodeAddress& coordinator = ring_[next_coordinator_];
  next_coordinator_ = (next_coordinator_ + 1) % ring_.size();
  return transport_->Call(coordinator, request, timeout_);
}

Status CassandraLiteClient::Put(std::string_view key, std::string_view value) {
  auto result = Execute(OpCode::kInsert, key, value);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Result<std::string> CassandraLiteClient::Get(std::string_view key) {
  auto result = Execute(OpCode::kLookup, key, "");
  if (!result.ok()) return result.status();
  if (!result->ok()) return result->status_as_object();
  return std::move(result->value);
}

Status CassandraLiteClient::Remove(std::string_view key) {
  auto result = Execute(OpCode::kRemove, key, "");
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

}  // namespace zht
