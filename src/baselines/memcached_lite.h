// MemcachedLite: baseline reproducing Memcached as the paper characterizes
// it (§II): in-memory only, no persistence, no replication, no dynamic
// membership, no append, 250-byte keys and 1 MB values, client-side static
// sharding over a fixed server list. Runs over the same transports and
// envelopes as ZHT so latency comparisons isolate the architecture.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.h"
#include "novoht/memory_map.h"

namespace zht {

inline constexpr std::size_t kMemcachedMaxKey = 250;
inline constexpr std::size_t kMemcachedMaxValue = 1 << 20;

class MemcachedLiteServer {
 public:
  Response Handle(Request&& request);
  RequestHandler AsHandler() {
    return [this](Request&& req) { return Handle(std::move(req)); };
  }

  std::uint64_t ops() const { return ops_; }

 private:
  std::mutex mu_;
  MemoryMap store_;
  std::uint64_t ops_ = 0;
};

class MemcachedLiteClient {
 public:
  MemcachedLiteClient(std::vector<NodeAddress> servers,
                      ClientTransport* transport,
                      Nanos timeout = 200 * kNanosPerMilli)
      : servers_(std::move(servers)), transport_(transport),
        timeout_(timeout) {}

  Status Set(std::string_view key, std::string_view value);
  Result<std::string> Get(std::string_view key);
  Status Delete(std::string_view key);

 private:
  const NodeAddress& ShardFor(std::string_view key) const;

  std::vector<NodeAddress> servers_;
  ClientTransport* transport_;
  Nanos timeout_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace zht
