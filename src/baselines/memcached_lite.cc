#include "baselines/memcached_lite.h"

#include "hashing/hash_functions.h"

namespace zht {

Response MemcachedLiteServer::Handle(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  std::lock_guard<std::mutex> lock(mu_);
  ++ops_;
  switch (request.op) {
    case OpCode::kInsert: {
      if (request.key.size() > kMemcachedMaxKey ||
          request.value.size() > kMemcachedMaxValue) {
        resp.status = Status(StatusCode::kCapacity).raw();
        return resp;
      }
      resp.status = store_.Put(request.key, request.value).raw();
      return resp;
    }
    case OpCode::kLookup: {
      auto value = store_.Get(request.key);
      if (!value.ok()) {
        resp.status = value.status().raw();
      } else {
        resp.value = std::move(*value);
      }
      return resp;
    }
    case OpCode::kRemove:
      resp.status = store_.Remove(request.key).raw();
      return resp;
    case OpCode::kPing:
      return resp;
    default:
      // No append, no replication, no membership ops.
      resp.status = Status(StatusCode::kNotSupported).raw();
      return resp;
  }
}

const NodeAddress& MemcachedLiteClient::ShardFor(std::string_view key) const {
  // Static client-side sharding (memcached's classic distribution).
  return servers_[HashKey(key, HashKind::kFnv1a) % servers_.size()];
}

Status MemcachedLiteClient::Set(std::string_view key, std::string_view value) {
  Request request;
  request.op = OpCode::kInsert;
  request.seq = next_seq_++;
  request.key.assign(key);
  request.value.assign(value);
  auto result = transport_->Call(ShardFor(key), request, timeout_);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Result<std::string> MemcachedLiteClient::Get(std::string_view key) {
  Request request;
  request.op = OpCode::kLookup;
  request.seq = next_seq_++;
  request.key.assign(key);
  auto result = transport_->Call(ShardFor(key), request, timeout_);
  if (!result.ok()) return result.status();
  if (!result->ok()) return result->status_as_object();
  return std::move(result->value);
}

Status MemcachedLiteClient::Delete(std::string_view key) {
  Request request;
  request.op = OpCode::kRemove;
  request.seq = next_seq_++;
  request.key.assign(key);
  auto result = transport_->Call(ShardFor(key), request, timeout_);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

}  // namespace zht
