// CmpiLite: a C-MPI-like baseline (§II). C-MPI implements the Kademlia
// DHT over MPI for HPC: log(N) XOR-metric routing, no replication, no
// persistence, no dynamic membership (the MPI world is fixed at startup —
// every rank is known, but lookups still route through Kademlia buckets).
// The paper's critique — single-node failure can take down the MPI world,
// log(N) hops — is reproduced by the routing mechanics and a
// world-failure flag.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "net/transport.h"
#include "novoht/memory_map.h"

namespace zht {

struct CmpiLiteOptions {
  std::uint32_t rank = 0;
  std::uint32_t world_size = 1;
  Nanos peer_timeout = 500 * kNanosPerMilli;
};

class CmpiLiteNode {
 public:
  CmpiLiteNode(const CmpiLiteOptions& options,
               std::vector<NodeAddress> world, ClientTransport* transport);

  Response Handle(Request&& request);
  RequestHandler AsHandler() {
    return [this](Request&& req) { return Handle(std::move(req)); };
  }

  // Kademlia node id of a rank (well-mixed, deterministic).
  static std::uint64_t IdOf(std::uint32_t rank);

  // Rank whose id is XOR-closest to the key hash (the owner).
  std::uint32_t OwnerOf(std::uint64_t key_hash) const;

  // Next hop toward `target_id` through the k-bucket for the current
  // distance's most significant bit (self if no strictly closer peer).
  std::uint32_t NextHopTowards(std::uint64_t target_id) const;

  // MPI's failure property: one dead rank wedges the whole world. When
  // set, every node refuses requests (kUnavailable).
  void SetWorldFailed(bool failed) { world_failed_ = failed; }

  std::uint64_t forwards() const { return forwards_; }
  std::uint64_t executed() const { return executed_; }

 private:
  Response ExecuteLocal(Request&& request);

  CmpiLiteOptions options_;
  std::uint64_t self_id_;
  std::vector<NodeAddress> world_;
  std::vector<std::uint64_t> ids_;  // id per rank
  // bucket[b] = ranks whose XOR distance to self has MSB at bit b.
  std::vector<std::vector<std::uint32_t>> buckets_;
  ClientTransport* transport_;
  std::mutex mu_;
  MemoryMap store_;
  bool world_failed_ = false;
  std::uint64_t forwards_ = 0;
  std::uint64_t executed_ = 0;
};

// Client: sends to a fixed "home" rank (as an MPI process would talk to
// its local DHT endpoint); routing proceeds from there.
class CmpiLiteClient {
 public:
  CmpiLiteClient(std::vector<NodeAddress> world, ClientTransport* transport,
                 std::uint32_t home_rank = 0,
                 Nanos timeout = kNanosPerSec)
      : world_(std::move(world)), transport_(transport),
        home_rank_(home_rank), timeout_(timeout) {}

  Status Put(std::string_view key, std::string_view value);
  Result<std::string> Get(std::string_view key);
  Status Remove(std::string_view key);

 private:
  Result<Response> Execute(OpCode op, std::string_view key,
                           std::string_view value);

  std::vector<NodeAddress> world_;
  ClientTransport* transport_;
  std::uint32_t home_rank_;
  Nanos timeout_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace zht
