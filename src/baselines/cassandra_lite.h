// CassandraLite: baseline reproducing the two mechanisms the paper blames
// for Cassandra's latency gap (§II, §IV.C): logarithmic routing over a
// consistent-hash ring (Chord-style finger tables; the coordinator a client
// contacts forwards hop by hop toward the key's owner) and a heavier
// per-operation stack (a configurable per-op overhead standing in for the
// JVM/SEDA cost). Writes replicate to RF-1 ring successors synchronously
// ("always writable" with consistency deferred to reads: reads optionally
// consult one replica digest, Cassandra's read-repair analogue).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "net/transport.h"
#include "novoht/memory_map.h"

namespace zht {

struct CassandraLiteOptions {
  std::uint32_t self = 0;         // index of this node in the ring
  std::uint32_t ring_size = 1;
  int replication_factor = 1;     // total copies
  bool read_repair = true;        // consult a replica digest on reads
  Nanos per_op_overhead = 0;      // stand-in for JVM/stack weight (busy-wait
                                  // free: applied only in the simulator)
  Nanos peer_timeout = 500 * kNanosPerMilli;
};

class CassandraLiteNode {
 public:
  // Node i's ring token is evenly spaced: i * 2^64 / ring_size.
  CassandraLiteNode(const CassandraLiteOptions& options,
                    std::vector<NodeAddress> ring, ClientTransport* transport);

  Response Handle(Request&& request);
  RequestHandler AsHandler() {
    return [this](Request&& req) { return Handle(std::move(req)); };
  }

  std::uint64_t forwards() const { return forwards_; }
  std::uint64_t executed() const { return executed_; }

  // Ring owner of a hash: first token clockwise from it.
  std::uint32_t OwnerOf(std::uint64_t hash) const;

 private:
  static std::uint64_t TokenOf(std::uint32_t index, std::uint32_t ring_size);

  // Chord routing: next hop toward `target_owner` using the finger table.
  std::uint32_t NextHopTowards(std::uint32_t target_owner) const;

  Response ExecuteLocal(Request&& request);
  Response Forward(std::uint32_t node, Request&& request);

  CassandraLiteOptions options_;
  std::vector<NodeAddress> ring_;
  std::vector<std::uint32_t> fingers_;  // node indices at token + 2^k
  ClientTransport* transport_;
  std::mutex mu_;
  MemoryMap store_;
  std::uint64_t forwards_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t next_seq_ = 1;
};

// Client: contacts a coordinator (round-robin over the ring, as drivers
// balance over contact points); the coordinator routes to the owner.
class CassandraLiteClient {
 public:
  CassandraLiteClient(std::vector<NodeAddress> ring,
                      ClientTransport* transport,
                      Nanos timeout = kNanosPerSec)
      : ring_(std::move(ring)), transport_(transport), timeout_(timeout) {}

  Status Put(std::string_view key, std::string_view value);
  Result<std::string> Get(std::string_view key);
  Status Remove(std::string_view key);

 private:
  Result<Response> Execute(OpCode op, std::string_view key,
                           std::string_view value);

  std::vector<NodeAddress> ring_;
  ClientTransport* transport_;
  Nanos timeout_;
  std::size_t next_coordinator_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace zht
