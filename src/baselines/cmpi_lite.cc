#include "baselines/cmpi_lite.h"

#include <bit>

#include "hashing/hash_functions.h"

namespace zht {

std::uint64_t CmpiLiteNode::IdOf(std::uint32_t rank) {
  return Mix64(0xC3D1'0000'0000'0000ull | rank);
}

CmpiLiteNode::CmpiLiteNode(const CmpiLiteOptions& options,
                           std::vector<NodeAddress> world,
                           ClientTransport* transport)
    : options_(options), self_id_(IdOf(options.rank)),
      world_(std::move(world)), buckets_(64), transport_(transport) {
  ids_.reserve(options_.world_size);
  for (std::uint32_t rank = 0; rank < options_.world_size; ++rank) {
    ids_.push_back(IdOf(rank));
  }
  // One contact per k-bucket (the XOR-closest to self), the classic
  // Kademlia routing-table shape that yields log(N)-hop lookups. Keeping
  // every rank in every bucket would collapse routing to ~1 hop and hide
  // the behavior the paper contrasts ZHT against.
  for (std::uint32_t rank = 0; rank < options_.world_size; ++rank) {
    if (rank == options_.rank) continue;
    std::uint64_t distance = self_id_ ^ ids_[rank];
    int msb = 63 - std::countl_zero(distance);
    auto& bucket = buckets_[static_cast<std::size_t>(msb)];
    if (bucket.empty()) {
      bucket.push_back(rank);
    } else if ((self_id_ ^ ids_[rank]) < (self_id_ ^ ids_[bucket[0]])) {
      bucket[0] = rank;
    }
  }
}

std::uint32_t CmpiLiteNode::OwnerOf(std::uint64_t key_hash) const {
  std::uint32_t best = 0;
  std::uint64_t best_distance = ~0ull;
  for (std::uint32_t rank = 0; rank < options_.world_size; ++rank) {
    std::uint64_t distance = ids_[rank] ^ key_hash;
    if (distance < best_distance) {
      best_distance = distance;
      best = rank;
    }
  }
  return best;
}

std::uint32_t CmpiLiteNode::NextHopTowards(std::uint64_t target_id) const {
  std::uint64_t self_distance = self_id_ ^ target_id;
  if (self_distance == 0) return options_.rank;
  int msb = 63 - std::countl_zero(self_distance);
  // Kademlia step: consult the bucket covering the distance's MSB; pick
  // the member closest to the target. Each hop clears at least that bit,
  // so lookups take at most log2(world) hops.
  const auto& bucket = buckets_[static_cast<std::size_t>(msb)];
  std::uint32_t best = options_.rank;
  std::uint64_t best_distance = self_distance;
  for (std::uint32_t rank : bucket) {
    std::uint64_t distance = ids_[rank] ^ target_id;
    if (distance < best_distance) {
      best_distance = distance;
      best = rank;
    }
  }
  return best;
}

Response CmpiLiteNode::ExecuteLocal(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  std::lock_guard<std::mutex> lock(mu_);
  ++executed_;
  switch (request.op) {
    case OpCode::kInsert:
      resp.status = store_.Put(request.key, request.value).raw();
      break;
    case OpCode::kRemove:
      resp.status = store_.Remove(request.key).raw();
      break;
    case OpCode::kLookup: {
      auto value = store_.Get(request.key);
      if (!value.ok()) {
        resp.status = value.status().raw();
      } else {
        resp.value = std::move(*value);
      }
      break;
    }
    default:
      // No append, no replication, no persistence, no membership ops.
      resp.status = Status(StatusCode::kNotSupported).raw();
  }
  return resp;
}

Response CmpiLiteNode::Handle(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  if (world_failed_) {
    // "making it brittle at large scale and prone to system-wide failures
    // due to single node failures" (§II).
    resp.status = Status(StatusCode::kUnavailable, "MPI world failed").raw();
    return resp;
  }
  switch (request.op) {
    case OpCode::kInsert:
    case OpCode::kLookup:
    case OpCode::kRemove:
      break;
    case OpCode::kPing:
      return resp;
    default:
      resp.status = Status(StatusCode::kNotSupported).raw();
      return resp;
  }

  std::uint64_t key_hash = HashKey(request.key, HashKind::kFnv1a);
  std::uint32_t owner = OwnerOf(key_hash);
  if (owner == options_.rank) return ExecuteLocal(std::move(request));

  std::uint32_t next = NextHopTowards(ids_[owner]);
  if (next == options_.rank) return ExecuteLocal(std::move(request));
  ++forwards_;
  auto result = transport_->Call(world_[next], request,
                                 options_.peer_timeout);
  if (!result.ok()) {
    resp.status = Status(StatusCode::kNetwork).raw();
    return resp;
  }
  return *result;
}

Result<Response> CmpiLiteClient::Execute(OpCode op, std::string_view key,
                                         std::string_view value) {
  Request request;
  request.op = op;
  request.seq = next_seq_++;
  request.key.assign(key);
  request.value.assign(value);
  return transport_->Call(world_[home_rank_], request, timeout_);
}

Status CmpiLiteClient::Put(std::string_view key, std::string_view value) {
  auto result = Execute(OpCode::kInsert, key, value);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Result<std::string> CmpiLiteClient::Get(std::string_view key) {
  auto result = Execute(OpCode::kLookup, key, "");
  if (!result.ok()) return result.status();
  if (!result->ok()) return result->status_as_object();
  return std::move(result->value);
}

Status CmpiLiteClient::Remove(std::string_view key) {
  auto result = Execute(OpCode::kRemove, key, "");
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

}  // namespace zht
