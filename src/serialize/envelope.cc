#include "serialize/envelope.h"

#include "serialize/wire.h"

namespace zht {
namespace {

// Field numbers are part of the wire contract; never renumber.
enum ReqField : std::uint32_t {
  kReqOp = 1,
  kReqSeq = 2,
  kReqKey = 3,
  kReqValue = 4,
  kReqEpoch = 5,
  kReqPartition = 6,
  kReqReplicaIndex = 7,
  kReqServerOrigin = 8,
  kReqClientId = 9,
};

enum RespField : std::uint32_t {
  kRespSeq = 1,
  kRespStatus = 2,
  kRespValue = 3,
  kRespEpoch = 4,
  kRespMembership = 5,
  kRespRedirectHost = 6,
  kRespRedirectPort = 7,
  kRespRetryAfter = 8,
};

}  // namespace

std::string_view OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kInsert: return "INSERT";
    case OpCode::kLookup: return "LOOKUP";
    case OpCode::kRemove: return "REMOVE";
    case OpCode::kAppend: return "APPEND";
    case OpCode::kPing: return "PING";
    case OpCode::kMembershipPull: return "MEMBERSHIP_PULL";
    case OpCode::kMembershipPush: return "MEMBERSHIP_PUSH";
    case OpCode::kReplicate: return "REPLICATE";
    case OpCode::kMigrateBegin: return "MIGRATE_BEGIN";
    case OpCode::kMigrateData: return "MIGRATE_DATA";
    case OpCode::kMigrateEnd: return "MIGRATE_END";
    case OpCode::kJoinRequest: return "JOIN_REQUEST";
    case OpCode::kDepartRequest: return "DEPART_REQUEST";
    case OpCode::kBroadcast: return "BROADCAST";
    case OpCode::kMigrateOut: return "MIGRATE_OUT";
    case OpCode::kRepair: return "REPAIR";
    case OpCode::kStats: return "STATS";
    case OpCode::kBatch: return "BATCH";
    case OpCode::kDigest: return "DIGEST";
    case OpCode::kRebuildBegin: return "REBUILD_BEGIN";
    case OpCode::kRebuildData: return "REBUILD_DATA";
    case OpCode::kRebuildEnd: return "REBUILD_END";
  }
  return "UNKNOWN";
}

std::string PartitionDigest::Encode() const {
  std::string out;
  wire::Writer w(&out);
  w.PutVarintField(1, count);
  w.PutVarintField(2, crc);
  return out;
}

Result<PartitionDigest> PartitionDigest::Decode(std::string_view data) {
  PartitionDigest digest;
  wire::Reader r(data);
  while (!r.AtEnd()) {
    std::uint32_t field;
    wire::WireType type;
    if (!r.GetTag(&field, &type)) {
      return Status(StatusCode::kCorruption, "bad digest tag");
    }
    std::uint64_t v = 0;
    switch (field) {
      case 1:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "count");
        digest.count = v;
        break;
      case 2:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "crc");
        digest.crc = static_cast<std::uint32_t>(v);
        break;
      default:
        if (!r.SkipValue(type)) {
          return Status(StatusCode::kCorruption, "unknown digest field");
        }
    }
  }
  return digest;
}

std::uint64_t Request::DedupKey() const {
  if (client_id == 0 || seq == 0) return 0;
  return client_id * 0x9e3779b97f4a7c15ull ^ seq * 0xff51afd7ed558ccdull ^
         replica_index;
}

std::string Request::Encode() const {
  std::string out;
  wire::Writer w(&out);
  w.PutVarintField(kReqOp, static_cast<std::uint64_t>(op));
  if (seq != 0) w.PutVarintField(kReqSeq, seq);
  if (!key.empty()) w.PutStringField(kReqKey, key);
  if (!value.empty()) w.PutStringField(kReqValue, value);
  if (epoch != 0) w.PutVarintField(kReqEpoch, epoch);
  if (partition != 0) w.PutVarintField(kReqPartition, partition);
  if (replica_index != 0) w.PutVarintField(kReqReplicaIndex, replica_index);
  if (server_origin) w.PutVarintField(kReqServerOrigin, 1);
  if (client_id != 0) w.PutVarintField(kReqClientId, client_id);
  return out;
}

Result<Request> Request::Decode(std::string_view data) {
  Request req;
  wire::Reader r(data);
  bool saw_op = false;
  while (!r.AtEnd()) {
    std::uint32_t field;
    wire::WireType type;
    if (!r.GetTag(&field, &type)) {
      return Status(StatusCode::kCorruption, "bad request tag");
    }
    std::uint64_t v = 0;
    std::string_view s;
    switch (field) {
      case kReqOp:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "op");
        if (v < 1 || v > 22) {
          return Status(StatusCode::kCorruption, "unknown opcode");
        }
        req.op = static_cast<OpCode>(v);
        saw_op = true;
        break;
      case kReqSeq:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "seq");
        req.seq = v;
        break;
      case kReqKey:
        if (!r.GetLengthDelimited(&s)) {
          return Status(StatusCode::kCorruption, "key");
        }
        req.key.assign(s);
        break;
      case kReqValue:
        if (!r.GetLengthDelimited(&s)) {
          return Status(StatusCode::kCorruption, "value");
        }
        req.value.assign(s);
        break;
      case kReqEpoch:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "epoch");
        req.epoch = static_cast<std::uint32_t>(v);
        break;
      case kReqPartition:
        if (!r.GetVarint(&v)) {
          return Status(StatusCode::kCorruption, "partition");
        }
        req.partition = static_cast<std::uint32_t>(v);
        break;
      case kReqReplicaIndex:
        if (!r.GetVarint(&v)) {
          return Status(StatusCode::kCorruption, "replica_index");
        }
        req.replica_index = static_cast<std::uint8_t>(v);
        break;
      case kReqServerOrigin:
        if (!r.GetVarint(&v)) {
          return Status(StatusCode::kCorruption, "server_origin");
        }
        req.server_origin = (v != 0);
        break;
      case kReqClientId:
        if (!r.GetVarint(&v)) {
          return Status(StatusCode::kCorruption, "client_id");
        }
        req.client_id = v;
        break;
      default:
        // Unknown field: skip for forward compatibility.
        if (!r.SkipValue(type)) {
          return Status(StatusCode::kCorruption, "unknown field");
        }
    }
  }
  if (!saw_op) return Status(StatusCode::kCorruption, "missing opcode");
  return req;
}

std::string Response::Encode() const {
  std::string out;
  wire::Writer w(&out);
  if (seq != 0) w.PutVarintField(kRespSeq, seq);
  if (status != 0) {
    w.PutVarintField(kRespStatus, static_cast<std::uint64_t>(
                                      static_cast<std::uint32_t>(status)));
  }
  if (!value.empty()) w.PutStringField(kRespValue, value);
  if (epoch != 0) w.PutVarintField(kRespEpoch, epoch);
  if (!membership.empty()) w.PutStringField(kRespMembership, membership);
  if (!redirect_host.empty()) {
    w.PutStringField(kRespRedirectHost, redirect_host);
  }
  if (redirect_port != 0) w.PutVarintField(kRespRedirectPort, redirect_port);
  if (retry_after_us != 0) w.PutVarintField(kRespRetryAfter, retry_after_us);
  return out;
}

Result<Response> Response::Decode(std::string_view data) {
  Response resp;
  wire::Reader r(data);
  while (!r.AtEnd()) {
    std::uint32_t field;
    wire::WireType type;
    if (!r.GetTag(&field, &type)) {
      return Status(StatusCode::kCorruption, "bad response tag");
    }
    std::uint64_t v = 0;
    std::string_view s;
    switch (field) {
      case kRespSeq:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "seq");
        resp.seq = v;
        break;
      case kRespStatus:
        if (!r.GetVarint(&v)) {
          return Status(StatusCode::kCorruption, "status");
        }
        resp.status = static_cast<std::int32_t>(v);
        break;
      case kRespValue:
        if (!r.GetLengthDelimited(&s)) {
          return Status(StatusCode::kCorruption, "value");
        }
        resp.value.assign(s);
        break;
      case kRespEpoch:
        if (!r.GetVarint(&v)) return Status(StatusCode::kCorruption, "epoch");
        resp.epoch = static_cast<std::uint32_t>(v);
        break;
      case kRespMembership:
        if (!r.GetLengthDelimited(&s)) {
          return Status(StatusCode::kCorruption, "membership");
        }
        resp.membership.assign(s);
        break;
      case kRespRedirectHost:
        if (!r.GetLengthDelimited(&s)) {
          return Status(StatusCode::kCorruption, "redirect_host");
        }
        resp.redirect_host.assign(s);
        break;
      case kRespRedirectPort:
        if (!r.GetVarint(&v)) {
          return Status(StatusCode::kCorruption, "redirect_port");
        }
        resp.redirect_port = static_cast<std::uint16_t>(v);
        break;
      case kRespRetryAfter:
        if (!r.GetVarint(&v)) {
          return Status(StatusCode::kCorruption, "retry_after");
        }
        resp.retry_after_us = static_cast<std::uint32_t>(v);
        break;
      default:
        if (!r.SkipValue(type)) {
          return Status(StatusCode::kCorruption, "unknown field");
        }
    }
  }
  return resp;
}

}  // namespace zht
