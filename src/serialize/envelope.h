// Request/Response envelopes: the messages ZHT sends on the wire. The paper
// encodes the operation indicator plus the key/value pair with Google
// Protocol Buffers (§III.G); we encode the same content with our wire codec.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace zht {

enum class OpCode : std::uint8_t {
  kInsert = 1,
  kLookup = 2,
  kRemove = 3,
  kAppend = 4,          // lock-free concurrent value modification (§III.I)
  kPing = 5,            // liveness probe / failure detection
  kMembershipPull = 6,  // fetch the current membership table
  kMembershipPush = 7,  // manager broadcast of an incremental delta
  kReplicate = 8,       // server→server replication forward
  kMigrateBegin = 9,    // lock partition on source, start transfer
  kMigrateData = 10,    // partition payload (batched key/value pairs)
  kMigrateEnd = 11,     // unlock, ownership switched
  kJoinRequest = 12,    // new node asks a manager to admit it
  kDepartRequest = 13,  // planned departure (maintenance)
  kBroadcast = 14,      // future-work broadcast primitive (§VI), implemented
  kMigrateOut = 15,     // manager → source server: push a partition away
  kRepair = 16,         // manager → owner: re-replicate a partition's chain
  kStats = 17,          // admin: fetch server counters (ops, entries, ...)
  kBatch = 18,          // BATCH envelope: N sub-requests in one frame
                        // (serialize/batch.h); response packs N sub-responses
  kDigest = 19,         // anti-entropy probe: compare partition digests
  kRebuildBegin = 20,   // owner → replica: wipe, start rebuild stream
  kRebuildData = 21,    // rebuild payload (batched key/value pairs)
  kRebuildEnd = 22,     // close stream; value carries the source digest
};

std::string_view OpCodeName(OpCode op);

// Order-independent summary of a partition's contents, exchanged by the
// anti-entropy pass (kDigest) and verified at the end of a rebuild stream
// (kRebuildEnd). `crc` is the XOR of one CRC32C per pair — chained over the
// key then the value, so "ab"/"c" and "a"/"bc" digest differently — which
// makes the digest insensitive to iteration order and cheap to compare.
struct PartitionDigest {
  std::uint64_t count = 0;  // live pairs
  std::uint32_t crc = 0;    // XOR of per-pair CRC32Cs

  std::string Encode() const;
  static Result<PartitionDigest> Decode(std::string_view data);

  bool operator==(const PartitionDigest&) const = default;
};

struct Request {
  OpCode op = OpCode::kPing;
  std::uint64_t seq = 0;        // client-chosen; echoed in the response
  std::string key;
  std::string value;
  std::uint32_t epoch = 0;      // sender's membership-table epoch
  std::uint32_t partition = 0;  // explicit partition (migration/replication)
  std::uint8_t replica_index = 0;  // depth in the replication chain
  bool server_origin = false;      // server→server traffic
  std::uint64_t client_id = 0;     // random per-client token; with `seq` it
                                   // deduplicates retransmitted appends
                                   // (UDP retries would otherwise double-
                                   // apply the non-idempotent op)

  // Identity of this operation for at-most-once handling: retransmissions
  // of one logical op carry the same (client_id, seq, replica_index) and
  // hash to the same key; 0 means "not dedupable" (no client identity).
  // Shared by the server's dedup window and the dedup-aware history
  // checker, so both sides agree on what counts as a duplicate.
  std::uint64_t DedupKey() const;

  std::string Encode() const;
  static Result<Request> Decode(std::string_view data);

  bool operator==(const Request&) const = default;
};

struct Response {
  std::uint64_t seq = 0;
  std::int32_t status = 0;     // StatusCode::raw()
  std::string value;           // lookup payload
  std::uint32_t epoch = 0;     // responder's membership epoch
  std::string membership;      // serialized table (piggybacked on REDIRECT)
  std::string redirect_host;   // new owner, when status == kRedirect
  std::uint16_t redirect_port = 0;
  std::uint32_t retry_after_us = 0;  // admission control: with kUnavailable,
                                     // how long the shedding server suggests
                                     // the client back off before retrying

  Status status_as_object() const {
    return Status(static_cast<StatusCode>(status));
  }
  bool ok() const { return status == 0; }

  std::string Encode() const;
  static Result<Response> Decode(std::string_view data);

  bool operator==(const Response&) const = default;
};

}  // namespace zht
