#include "serialize/batch.h"

#include "serialize/wire.h"

namespace zht {
namespace {

// A decoded batch may claim any count; cap what we preallocate so a
// malicious header cannot balloon memory before the payload check fails.
constexpr std::uint64_t kMaxBatchOps = 1u << 20;

std::size_t EncodedSliceSize(const std::string& encoded) {
  // varint length prefix (≤5 bytes for any sane message) + payload.
  std::size_t n = encoded.size();
  std::size_t prefix = 1;
  while (n >= 128) {
    n >>= 7;
    ++prefix;
  }
  return prefix + encoded.size();
}

}  // namespace

std::string BatchRequest::Encode() const {
  std::string out;
  wire::Writer w(&out);
  w.PutVarint(ops.size());
  for (const Request& op : ops) {
    std::string encoded = op.Encode();
    w.PutVarint(encoded.size());
    w.PutBytes(encoded);
  }
  return out;
}

Result<BatchRequest> BatchRequest::Decode(std::string_view data) {
  wire::Reader r(data);
  std::uint64_t count = 0;
  if (!r.GetVarint(&count)) {
    return Status(StatusCode::kCorruption, "batch request header");
  }
  if (count > kMaxBatchOps || count > r.remaining()) {
    return Status(StatusCode::kCorruption, "batch request count");
  }
  BatchRequest batch;
  batch.ops.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t len = 0;
    std::string_view slice;
    if (!r.GetVarint(&len) || !r.GetBytes(len, &slice)) {
      return Status(StatusCode::kCorruption, "batch request slice");
    }
    auto op = Request::Decode(slice);
    if (!op.ok()) return op.status();
    batch.ops.push_back(std::move(*op));
  }
  if (!r.AtEnd()) {
    return Status(StatusCode::kCorruption, "batch request trailing bytes");
  }
  return batch;
}

std::string BatchResponse::Encode() const {
  std::string out;
  wire::Writer w(&out);
  w.PutVarint(responses.size());
  for (const Response& resp : responses) {
    std::string encoded = resp.Encode();
    w.PutVarint(encoded.size());
    w.PutBytes(encoded);
  }
  return out;
}

Result<BatchResponse> BatchResponse::Decode(std::string_view data) {
  wire::Reader r(data);
  std::uint64_t count = 0;
  if (!r.GetVarint(&count)) {
    return Status(StatusCode::kCorruption, "batch response header");
  }
  if (count > kMaxBatchOps || count > r.remaining()) {
    return Status(StatusCode::kCorruption, "batch response count");
  }
  BatchResponse batch;
  batch.responses.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t len = 0;
    std::string_view slice;
    if (!r.GetVarint(&len) || !r.GetBytes(len, &slice)) {
      return Status(StatusCode::kCorruption, "batch response slice");
    }
    auto resp = Response::Decode(slice);
    if (!resp.ok()) return resp.status();
    batch.responses.push_back(std::move(*resp));
  }
  if (!r.AtEnd()) {
    return Status(StatusCode::kCorruption, "batch response trailing bytes");
  }
  return batch;
}

Request PackBatchRequest(std::span<const Request> ops, std::uint64_t seq,
                         bool server_origin) {
  BatchRequest batch;
  batch.ops.assign(ops.begin(), ops.end());
  Request carrier;
  carrier.op = OpCode::kBatch;
  carrier.seq = seq;
  carrier.server_origin = server_origin;
  carrier.value = batch.Encode();
  return carrier;
}

Response PackBatchResponse(const BatchResponse& batch, std::uint64_t seq,
                           std::uint32_t epoch) {
  Response carrier;
  carrier.seq = seq;
  carrier.epoch = epoch;
  carrier.value = batch.Encode();
  return carrier;
}

Result<std::vector<Response>> UnpackBatchResponse(const Response& carrier,
                                                  std::size_t expected) {
  if (!carrier.ok() && carrier.value.empty()) {
    // Batch-level failure: the peer rejected the envelope outright.
    return Status(static_cast<StatusCode>(carrier.status),
                  "batch rejected by peer");
  }
  auto batch = BatchResponse::Decode(carrier.value);
  if (!batch.ok()) return batch.status();
  if (batch->responses.size() != expected) {
    return Status(StatusCode::kCorruption, "batch response count mismatch");
  }
  return std::move(batch->responses);
}

std::vector<std::vector<Request>> ChunkBatch(std::span<const Request> ops,
                                             std::size_t max_bytes) {
  std::vector<std::vector<Request>> chunks;
  std::vector<Request> current;
  std::size_t current_bytes = 0;
  for (const Request& op : ops) {
    std::size_t op_bytes = EncodedSliceSize(op.Encode());
    if (!current.empty() && current_bytes + op_bytes > max_bytes) {
      chunks.push_back(std::move(current));
      current.clear();
      current_bytes = 0;
    }
    current.push_back(op);
    current_bytes += op_bytes;
  }
  if (!current.empty()) chunks.push_back(std::move(current));
  return chunks;
}

}  // namespace zht
