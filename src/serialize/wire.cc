#include "serialize/wire.h"

#include <cstring>

namespace zht::wire {

void Writer::PutVarint(std::uint64_t value) {
  while (value >= 0x80) {
    out_->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out_->push_back(static_cast<char>(value));
}

void Writer::PutFixed64(std::uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  out_->append(buf, 8);
}

void Writer::PutBytes(std::string_view bytes) {
  out_->append(bytes.data(), bytes.size());
}

bool Reader::GetVarint(std::uint64_t* value) {
  std::uint64_t result = 0;
  int shift = 0;
  while (pos_ < data_.size() && shift <= 63) {
    std::uint8_t byte = static_cast<std::uint8_t>(data_[pos_++]);
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated or overlong
}

bool Reader::GetFixed64(std::uint64_t* value) {
  if (remaining() < 8) return false;
  std::uint64_t result = 0;
  for (int i = 0; i < 8; ++i) {
    result |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(data_[pos_ + i]))
              << (8 * i);
  }
  pos_ += 8;
  *value = result;
  return true;
}

bool Reader::GetBytes(std::size_t n, std::string_view* out) {
  if (remaining() < n) return false;
  *out = data_.substr(pos_, n);
  pos_ += n;
  return true;
}

bool Reader::GetTag(std::uint32_t* field, WireType* type) {
  std::uint64_t raw;
  if (!GetVarint(&raw)) return false;
  *field = static_cast<std::uint32_t>(raw >> 3);
  std::uint8_t t = raw & 0x7;
  if (t != 0 && t != 1 && t != 2) return false;
  *type = static_cast<WireType>(t);
  return true;
}

bool Reader::GetLengthDelimited(std::string_view* out) {
  std::uint64_t len;
  if (!GetVarint(&len)) return false;
  return GetBytes(len, out);
}

bool Reader::SkipValue(WireType type) {
  switch (type) {
    case WireType::kVarint: {
      std::uint64_t v;
      return GetVarint(&v);
    }
    case WireType::kFixed64: {
      std::uint64_t v;
      return GetFixed64(&v);
    }
    case WireType::kLengthDelimited: {
      std::string_view v;
      return GetLengthDelimited(&v);
    }
  }
  return false;
}

}  // namespace zht::wire
