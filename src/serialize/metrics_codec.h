// Versioned wire encoding of a MetricsSnapshot — what a STATS response
// carries in Response::value. Same codec discipline as every other message
// (serialize/wire.h): varint-tagged fields, length-delimited submessages,
// unknown fields skipped so old readers tolerate new metric attributes.
//
//   snapshot  := field 1 (varint)  version          (currently 1)
//                field 2 (bytes)*  entry
//   entry     := field 1 (bytes)   name
//                field 2 (varint)  kind             (MetricKind)
//                field 3 (zigzag)  value            (counter/gauge)
//                field 4 (bytes)   histogram        (kind == histogram)
//   histogram := field 1 (varint)  count
//                field 2 (varint)  sum
//                field 3 (varint)  min
//                field 4 (varint)  max
//                field 5 (bytes)*  bucket
//   bucket    := field 1 (varint)  bucket index
//                field 2 (varint)  bucket count
#pragma once

#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/status.h"

namespace zht {

inline constexpr std::uint32_t kMetricsWireVersion = 1;

std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot);

// Rejects documents whose version is newer than this reader understands;
// unknown fields inside any message are skipped (forward compatibility for
// same-version additions).
Result<MetricsSnapshot> DecodeMetricsSnapshot(std::string_view data);

// Human-readable rendering used by zht-cli: counters and gauges print one
// `name = value` line each; histograms print a one-line summary with
// count/mean/p50/p90/p99 (values are nanoseconds in *latency_ns metrics).
std::string RenderMetricsSnapshot(const MetricsSnapshot& snapshot);

}  // namespace zht
