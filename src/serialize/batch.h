// BATCH envelope: N sub-requests (and their N sub-responses) carried in one
// wire frame. Batching amortizes the per-message network cost that §V shows
// dominates small KV operations — with connection caching a round-trip is
// cheap, but it is still one round-trip per op; a batch pays it once per
// many ops. The carrier is an ordinary Request/Response with op = kBatch
// and the packed sub-messages in `value`, so every transport and server
// that speaks the base envelope can forward a batch unchanged.
#pragma once

#include <span>
#include <vector>

#include "serialize/envelope.h"

namespace zht {

// A batch of sub-requests. Sub-requests keep their own seq/client_id (the
// append dedup window operates per sub-op, so a retransmitted batch never
// double-applies) and their own epoch/replica_index.
struct BatchRequest {
  std::vector<Request> ops;

  // varint count, then per op a length-delimited Request::Encode().
  std::string Encode() const;
  static Result<BatchRequest> Decode(std::string_view data);

  bool operator==(const BatchRequest&) const = default;
};

// Per-sub-request responses, in sub-request order. Sub-responses carry the
// full Response surface: a sub-op can individually REDIRECT (with
// piggybacked membership) while its siblings succeed.
struct BatchResponse {
  std::vector<Response> responses;

  std::string Encode() const;
  static Result<BatchResponse> Decode(std::string_view data);

  bool operator==(const BatchResponse&) const = default;
};

// Wraps sub-requests into the kBatch carrier (one frame on the wire).
Request PackBatchRequest(std::span<const Request> ops, std::uint64_t seq,
                         bool server_origin = false);

// Wraps sub-responses into the carrier Response.
Response PackBatchResponse(const BatchResponse& batch, std::uint64_t seq,
                           std::uint32_t epoch);

// Extracts sub-responses from a carrier Response. A carrier with a non-OK
// status and no payload is a batch-level failure (e.g. the peer could not
// decode the envelope) and surfaces as that status; a payload whose count
// differs from `expected` is corruption.
Result<std::vector<Response>> UnpackBatchResponse(const Response& carrier,
                                                  std::size_t expected);

// Greedily splits `ops` into chunks whose encoded payload stays under
// `max_bytes` (always at least one op per chunk, so oversized single ops
// still travel — the transport's own frame cap is the hard limit).
std::vector<std::vector<Request>> ChunkBatch(std::span<const Request> ops,
                                             std::size_t max_bytes);

}  // namespace zht
