#include "serialize/metrics_codec.h"

#include <cinttypes>
#include <cstdio>

#include "serialize/wire.h"

namespace zht {
namespace {

std::string EncodeHistogram(const HistogramData& histogram) {
  std::string out;
  wire::Writer w(&out);
  w.PutVarintField(1, histogram.count);
  w.PutVarintField(2, histogram.sum);
  w.PutVarintField(3, histogram.min);
  w.PutVarintField(4, histogram.max);
  for (const auto& [index, count] : histogram.buckets) {
    std::string bucket;
    wire::Writer bw(&bucket);
    bw.PutVarintField(1, index);
    bw.PutVarintField(2, count);
    w.PutStringField(5, bucket);
  }
  return out;
}

bool DecodeHistogram(std::string_view data, HistogramData* out) {
  wire::Reader r(data);
  while (!r.AtEnd()) {
    std::uint32_t field;
    wire::WireType type;
    if (!r.GetTag(&field, &type)) return false;
    std::uint64_t v;
    std::string_view bytes;
    switch (field) {
      case 1:
        if (!r.GetVarint(&v)) return false;
        out->count = v;
        break;
      case 2:
        if (!r.GetVarint(&v)) return false;
        out->sum = v;
        break;
      case 3:
        if (!r.GetVarint(&v)) return false;
        out->min = v;
        break;
      case 4:
        if (!r.GetVarint(&v)) return false;
        out->max = v;
        break;
      case 5: {
        if (!r.GetLengthDelimited(&bytes)) return false;
        wire::Reader br(bytes);
        std::uint64_t index = 0, count = 0;
        while (!br.AtEnd()) {
          std::uint32_t bf;
          wire::WireType bt;
          if (!br.GetTag(&bf, &bt)) return false;
          if (bf == 1) {
            if (!br.GetVarint(&index)) return false;
          } else if (bf == 2) {
            if (!br.GetVarint(&count)) return false;
          } else if (!br.SkipValue(bt)) {
            return false;
          }
        }
        out->buckets.emplace_back(static_cast<std::uint32_t>(index), count);
        break;
      }
      default:
        if (!r.SkipValue(type)) return false;
    }
  }
  return true;
}

bool DecodeEntry(std::string_view data, MetricValue* out) {
  wire::Reader r(data);
  while (!r.AtEnd()) {
    std::uint32_t field;
    wire::WireType type;
    if (!r.GetTag(&field, &type)) return false;
    std::uint64_t v;
    std::string_view bytes;
    switch (field) {
      case 1:
        if (!r.GetLengthDelimited(&bytes)) return false;
        out->name.assign(bytes);
        break;
      case 2:
        if (!r.GetVarint(&v)) return false;
        out->kind = static_cast<MetricKind>(v);
        break;
      case 3:
        if (!r.GetVarint(&v)) return false;
        out->value = wire::Reader::ZigZagDecode(v);
        break;
      case 4:
        if (!r.GetLengthDelimited(&bytes)) return false;
        if (!DecodeHistogram(bytes, &out->histogram)) return false;
        break;
      default:
        if (!r.SkipValue(type)) return false;
    }
  }
  return true;
}

}  // namespace

std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  wire::Writer w(&out);
  w.PutVarintField(1, kMetricsWireVersion);
  for (const MetricValue& entry : snapshot.entries) {
    std::string encoded;
    wire::Writer ew(&encoded);
    ew.PutStringField(1, entry.name);
    ew.PutVarintField(2, static_cast<std::uint64_t>(entry.kind));
    if (entry.kind == MetricKind::kHistogram) {
      ew.PutStringField(4, EncodeHistogram(entry.histogram));
    } else {
      ew.PutSignedField(3, entry.value);
    }
    w.PutStringField(2, encoded);
  }
  return out;
}

Result<MetricsSnapshot> DecodeMetricsSnapshot(std::string_view data) {
  MetricsSnapshot out;
  std::uint64_t version = 0;
  wire::Reader r(data);
  while (!r.AtEnd()) {
    std::uint32_t field;
    wire::WireType type;
    if (!r.GetTag(&field, &type)) {
      return Status(StatusCode::kCorruption, "metrics snapshot tag");
    }
    switch (field) {
      case 1:
        if (!r.GetVarint(&version)) {
          return Status(StatusCode::kCorruption, "metrics snapshot version");
        }
        if (version > kMetricsWireVersion) {
          return Status(StatusCode::kInvalidArgument,
                        "metrics snapshot version " + std::to_string(version) +
                            " newer than reader");
        }
        break;
      case 2: {
        std::string_view bytes;
        if (!r.GetLengthDelimited(&bytes)) {
          return Status(StatusCode::kCorruption, "metrics snapshot entry");
        }
        MetricValue entry;
        if (!DecodeEntry(bytes, &entry)) {
          return Status(StatusCode::kCorruption, "metrics entry payload");
        }
        out.entries.push_back(std::move(entry));
        break;
      }
      default:
        if (!r.SkipValue(type)) {
          return Status(StatusCode::kCorruption, "metrics snapshot field");
        }
    }
  }
  if (version == 0) {
    return Status(StatusCode::kCorruption, "metrics snapshot missing version");
  }
  return out;
}

std::string RenderMetricsSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[256];
  for (const MetricValue& entry : snapshot.entries) {
    if (entry.kind == MetricKind::kHistogram) {
      const HistogramData& h = entry.histogram;
      std::snprintf(line, sizeof(line),
                    "%s: count=%" PRIu64 " mean=%.0f p50=%.0f p90=%.0f "
                    "p99=%.0f max=%" PRIu64 "\n",
                    entry.name.c_str(), h.count, h.Mean(), h.Percentile(50),
                    h.Percentile(90), h.Percentile(99), h.max);
    } else {
      std::snprintf(line, sizeof(line), "%s = %" PRId64 "\n",
                    entry.name.c_str(), entry.value);
    }
    out += line;
  }
  return out;
}

}  // namespace zht
