// Protobuf-style wire codec (substitution for Google Protocol Buffers,
// which the paper uses to serialize complex values and the op indicator,
// §III.G). Same discipline: varint-encoded tagged fields, length-delimited
// byte strings, unknown-field tolerance so message schemas can evolve.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace zht::wire {

enum class WireType : std::uint8_t {
  kVarint = 0,
  kLengthDelimited = 2,
  kFixed64 = 1,
};

// ---- Writer ---------------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void PutVarint(std::uint64_t value);
  void PutFixed64(std::uint64_t value);
  void PutBytes(std::string_view bytes);  // raw, no length prefix

  void PutTag(std::uint32_t field, WireType type) {
    PutVarint((static_cast<std::uint64_t>(field) << 3) |
              static_cast<std::uint64_t>(type));
  }

  // Tagged fields.
  void PutVarintField(std::uint32_t field, std::uint64_t value) {
    PutTag(field, WireType::kVarint);
    PutVarint(value);
  }
  void PutFixed64Field(std::uint32_t field, std::uint64_t value) {
    PutTag(field, WireType::kFixed64);
    PutFixed64(value);
  }
  void PutStringField(std::uint32_t field, std::string_view value) {
    PutTag(field, WireType::kLengthDelimited);
    PutVarint(value.size());
    PutBytes(value);
  }
  // Signed varint (zigzag).
  void PutSignedField(std::uint32_t field, std::int64_t value) {
    PutVarintField(field, ZigZagEncode(value));
  }

  static std::uint64_t ZigZagEncode(std::int64_t v) {
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
  }

 private:
  std::string* out_;
};

// ---- Reader ---------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool AtEnd() const { return pos_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  // All getters return false on malformed/truncated input.
  bool GetVarint(std::uint64_t* value);
  bool GetFixed64(std::uint64_t* value);
  bool GetBytes(std::size_t n, std::string_view* out);

  bool GetTag(std::uint32_t* field, WireType* type);

  // Reads the payload for a tag of the given wire type (used both for known
  // fields and for skipping unknown ones).
  bool SkipValue(WireType type);
  bool GetLengthDelimited(std::string_view* out);

  static std::int64_t ZigZagDecode(std::uint64_t v) {
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace zht::wire
