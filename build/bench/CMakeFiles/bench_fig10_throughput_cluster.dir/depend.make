# Empty dependencies file for bench_fig10_throughput_cluster.
# This may be replaced when dependencies are built.
