file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_throughput_cluster.dir/bench_fig10_throughput_cluster.cc.o"
  "CMakeFiles/bench_fig10_throughput_cluster.dir/bench_fig10_throughput_cluster.cc.o.d"
  "bench_fig10_throughput_cluster"
  "bench_fig10_throughput_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_throughput_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
