# Empty dependencies file for bench_fig4_partitions.
# This may be replaced when dependencies are built.
