file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_latency_bgp.dir/bench_fig7_latency_bgp.cc.o"
  "CMakeFiles/bench_fig7_latency_bgp.dir/bench_fig7_latency_bgp.cc.o.d"
  "bench_fig7_latency_bgp"
  "bench_fig7_latency_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_latency_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
