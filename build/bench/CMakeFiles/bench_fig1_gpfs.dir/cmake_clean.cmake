file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_gpfs.dir/bench_fig1_gpfs.cc.o"
  "CMakeFiles/bench_fig1_gpfs.dir/bench_fig1_gpfs.cc.o.d"
  "bench_fig1_gpfs"
  "bench_fig1_gpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_gpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
