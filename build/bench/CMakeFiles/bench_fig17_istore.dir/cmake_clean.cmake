file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_istore.dir/bench_fig17_istore.cc.o"
  "CMakeFiles/bench_fig17_istore.dir/bench_fig17_istore.cc.o.d"
  "bench_fig17_istore"
  "bench_fig17_istore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_istore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
