file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_fusionfs.dir/bench_fig16_fusionfs.cc.o"
  "CMakeFiles/bench_fig16_fusionfs.dir/bench_fig16_fusionfs.cc.o.d"
  "bench_fig16_fusionfs"
  "bench_fig16_fusionfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_fusionfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
