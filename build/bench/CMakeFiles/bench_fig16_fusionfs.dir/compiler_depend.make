# Empty compiler generated dependencies file for bench_fig16_fusionfs.
# This may be replaced when dependencies are built.
