file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_novoht.dir/bench_fig6_novoht.cc.o"
  "CMakeFiles/bench_fig6_novoht.dir/bench_fig6_novoht.cc.o.d"
  "bench_fig6_novoht"
  "bench_fig6_novoht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_novoht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
