# Empty dependencies file for bench_fig12_replication.
# This may be replaced when dependencies are built.
