# Empty dependencies file for bench_fig15_migration.
# This may be replaced when dependencies are built.
