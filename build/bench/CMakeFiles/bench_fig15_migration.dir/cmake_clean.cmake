file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_migration.dir/bench_fig15_migration.cc.o"
  "CMakeFiles/bench_fig15_migration.dir/bench_fig15_migration.cc.o.d"
  "bench_fig15_migration"
  "bench_fig15_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
