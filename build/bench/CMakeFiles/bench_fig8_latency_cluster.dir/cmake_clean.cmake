file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_latency_cluster.dir/bench_fig8_latency_cluster.cc.o"
  "CMakeFiles/bench_fig8_latency_cluster.dir/bench_fig8_latency_cluster.cc.o.d"
  "bench_fig8_latency_cluster"
  "bench_fig8_latency_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_latency_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
