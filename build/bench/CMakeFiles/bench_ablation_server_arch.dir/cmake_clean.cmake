file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_server_arch.dir/bench_ablation_server_arch.cc.o"
  "CMakeFiles/bench_ablation_server_arch.dir/bench_ablation_server_arch.cc.o.d"
  "bench_ablation_server_arch"
  "bench_ablation_server_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_server_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
