# Empty dependencies file for bench_fig5_bootstrap.
# This may be replaced when dependencies are built.
