# Empty dependencies file for bench_ablation_conncache.
# This may be replaced when dependencies are built.
