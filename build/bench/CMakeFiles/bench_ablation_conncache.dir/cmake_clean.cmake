file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conncache.dir/bench_ablation_conncache.cc.o"
  "CMakeFiles/bench_ablation_conncache.dir/bench_ablation_conncache.cc.o.d"
  "bench_ablation_conncache"
  "bench_ablation_conncache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conncache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
