# Empty dependencies file for bench_fig19_matrix_efficiency.
# This may be replaced when dependencies are built.
