# Empty dependencies file for bench_fig18_matrix.
# This may be replaced when dependencies are built.
