file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_matrix.dir/bench_fig18_matrix.cc.o"
  "CMakeFiles/bench_fig18_matrix.dir/bench_fig18_matrix.cc.o.d"
  "bench_fig18_matrix"
  "bench_fig18_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
