# Empty dependencies file for bench_ablation_residency.
# This may be replaced when dependencies are built.
