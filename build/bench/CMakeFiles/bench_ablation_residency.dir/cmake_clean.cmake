file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_residency.dir/bench_ablation_residency.cc.o"
  "CMakeFiles/bench_ablation_residency.dir/bench_ablation_residency.cc.o.d"
  "bench_ablation_residency"
  "bench_ablation_residency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_residency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
