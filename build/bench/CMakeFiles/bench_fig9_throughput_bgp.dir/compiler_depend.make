# Empty compiler generated dependencies file for bench_fig9_throughput_bgp.
# This may be replaced when dependencies are built.
