file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_throughput_bgp.dir/bench_fig9_throughput_bgp.cc.o"
  "CMakeFiles/bench_fig9_throughput_bgp.dir/bench_fig9_throughput_bgp.cc.o.d"
  "bench_fig9_throughput_bgp"
  "bench_fig9_throughput_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_throughput_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
