file(REMOVE_RECURSE
  "CMakeFiles/zht-server.dir/zht_server_main.cc.o"
  "CMakeFiles/zht-server.dir/zht_server_main.cc.o.d"
  "zht-server"
  "zht-server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht-server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
