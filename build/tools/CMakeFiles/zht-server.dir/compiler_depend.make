# Empty compiler generated dependencies file for zht-server.
# This may be replaced when dependencies are built.
