# Empty dependencies file for zht-cli.
# This may be replaced when dependencies are built.
