file(REMOVE_RECURSE
  "CMakeFiles/zht-cli.dir/zht_cli.cc.o"
  "CMakeFiles/zht-cli.dir/zht_cli.cc.o.d"
  "zht-cli"
  "zht-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
