file(REMOVE_RECURSE
  "CMakeFiles/istore_test.dir/istore_test.cc.o"
  "CMakeFiles/istore_test.dir/istore_test.cc.o.d"
  "istore_test"
  "istore_test.pdb"
  "istore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/istore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
