# Empty compiler generated dependencies file for istore_test.
# This may be replaced when dependencies are built.
