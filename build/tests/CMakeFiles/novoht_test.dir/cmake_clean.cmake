file(REMOVE_RECURSE
  "CMakeFiles/novoht_test.dir/novoht_test.cc.o"
  "CMakeFiles/novoht_test.dir/novoht_test.cc.o.d"
  "novoht_test"
  "novoht_test.pdb"
  "novoht_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/novoht_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
