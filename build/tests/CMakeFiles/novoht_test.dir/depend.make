# Empty dependencies file for novoht_test.
# This may be replaced when dependencies are built.
