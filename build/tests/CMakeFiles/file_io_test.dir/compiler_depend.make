# Empty compiler generated dependencies file for file_io_test.
# This may be replaced when dependencies are built.
