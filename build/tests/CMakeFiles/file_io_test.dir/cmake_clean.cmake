file(REMOVE_RECURSE
  "CMakeFiles/file_io_test.dir/file_io_test.cc.o"
  "CMakeFiles/file_io_test.dir/file_io_test.cc.o.d"
  "file_io_test"
  "file_io_test.pdb"
  "file_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
