
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/matrix_test.cc" "tests/CMakeFiles/matrix_test.dir/matrix_test.cc.o" "gcc" "tests/CMakeFiles/matrix_test.dir/matrix_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/zht_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zht_core.dir/DependInfo.cmake"
  "/root/repo/build/src/novoht/CMakeFiles/zht_novoht.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/zht_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/zht_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/zht_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/zht_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zht_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zht_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
