file(REMOVE_RECURSE
  "CMakeFiles/cmpi_test.dir/cmpi_test.cc.o"
  "CMakeFiles/cmpi_test.dir/cmpi_test.cc.o.d"
  "cmpi_test"
  "cmpi_test.pdb"
  "cmpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
