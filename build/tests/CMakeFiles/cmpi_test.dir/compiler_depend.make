# Empty compiler generated dependencies file for cmpi_test.
# This may be replaced when dependencies are built.
