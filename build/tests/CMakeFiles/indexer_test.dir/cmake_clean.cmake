file(REMOVE_RECURSE
  "CMakeFiles/indexer_test.dir/indexer_test.cc.o"
  "CMakeFiles/indexer_test.dir/indexer_test.cc.o.d"
  "indexer_test"
  "indexer_test.pdb"
  "indexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
