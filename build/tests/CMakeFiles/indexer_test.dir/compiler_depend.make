# Empty compiler generated dependencies file for indexer_test.
# This may be replaced when dependencies are built.
