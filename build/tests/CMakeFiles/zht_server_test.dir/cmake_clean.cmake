file(REMOVE_RECURSE
  "CMakeFiles/zht_server_test.dir/zht_server_test.cc.o"
  "CMakeFiles/zht_server_test.dir/zht_server_test.cc.o.d"
  "zht_server_test"
  "zht_server_test.pdb"
  "zht_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
