# Empty compiler generated dependencies file for zht_server_test.
# This may be replaced when dependencies are built.
