# Empty dependencies file for membership_fuzz_test.
# This may be replaced when dependencies are built.
