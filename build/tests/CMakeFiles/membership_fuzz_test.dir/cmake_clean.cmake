file(REMOVE_RECURSE
  "CMakeFiles/membership_fuzz_test.dir/membership_fuzz_test.cc.o"
  "CMakeFiles/membership_fuzz_test.dir/membership_fuzz_test.cc.o.d"
  "membership_fuzz_test"
  "membership_fuzz_test.pdb"
  "membership_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
