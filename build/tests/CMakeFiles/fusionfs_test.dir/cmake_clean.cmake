file(REMOVE_RECURSE
  "CMakeFiles/fusionfs_test.dir/fusionfs_test.cc.o"
  "CMakeFiles/fusionfs_test.dir/fusionfs_test.cc.o.d"
  "fusionfs_test"
  "fusionfs_test.pdb"
  "fusionfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusionfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
