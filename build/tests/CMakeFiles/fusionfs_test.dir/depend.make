# Empty dependencies file for fusionfs_test.
# This may be replaced when dependencies are built.
