file(REMOVE_RECURSE
  "CMakeFiles/novoht_residency_test.dir/novoht_residency_test.cc.o"
  "CMakeFiles/novoht_residency_test.dir/novoht_residency_test.cc.o.d"
  "novoht_residency_test"
  "novoht_residency_test.pdb"
  "novoht_residency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/novoht_residency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
