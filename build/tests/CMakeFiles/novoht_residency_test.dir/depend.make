# Empty dependencies file for novoht_residency_test.
# This may be replaced when dependencies are built.
