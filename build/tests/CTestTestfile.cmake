# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/hashing_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/novoht_test[1]_include.cmake")
include("/root/repo/build/tests/membership_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fusionfs_test[1]_include.cmake")
include("/root/repo/build/tests/istore_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/zht_server_test[1]_include.cmake")
include("/root/repo/build/tests/novoht_residency_test[1]_include.cmake")
include("/root/repo/build/tests/indexer_test[1]_include.cmake")
include("/root/repo/build/tests/fault_tolerance_test[1]_include.cmake")
include("/root/repo/build/tests/manager_test[1]_include.cmake")
include("/root/repo/build/tests/file_io_test[1]_include.cmake")
include("/root/repo/build/tests/cmpi_test[1]_include.cmake")
include("/root/repo/build/tests/membership_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/sim_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/wire_fuzz_test[1]_include.cmake")
add_test(tools_e2e "/root/repo/tests/tools_e2e_test.sh" "/root/repo/build" "/root/repo")
set_tests_properties(tools_e2e PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
