# Empty dependencies file for istore_objects.
# This may be replaced when dependencies are built.
