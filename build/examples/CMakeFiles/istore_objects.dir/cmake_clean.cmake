file(REMOVE_RECURSE
  "CMakeFiles/istore_objects.dir/istore_objects.cpp.o"
  "CMakeFiles/istore_objects.dir/istore_objects.cpp.o.d"
  "istore_objects"
  "istore_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/istore_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
