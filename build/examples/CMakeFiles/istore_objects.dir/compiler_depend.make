# Empty compiler generated dependencies file for istore_objects.
# This may be replaced when dependencies are built.
