file(REMOVE_RECURSE
  "CMakeFiles/indexed_search.dir/indexed_search.cpp.o"
  "CMakeFiles/indexed_search.dir/indexed_search.cpp.o.d"
  "indexed_search"
  "indexed_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexed_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
