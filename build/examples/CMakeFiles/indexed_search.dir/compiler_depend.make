# Empty compiler generated dependencies file for indexed_search.
# This may be replaced when dependencies are built.
