file(REMOVE_RECURSE
  "CMakeFiles/matrix_scheduler.dir/matrix_scheduler.cpp.o"
  "CMakeFiles/matrix_scheduler.dir/matrix_scheduler.cpp.o.d"
  "matrix_scheduler"
  "matrix_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
