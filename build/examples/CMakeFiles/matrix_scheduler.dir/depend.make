# Empty dependencies file for matrix_scheduler.
# This may be replaced when dependencies are built.
