# Empty dependencies file for fusionfs_metadata.
# This may be replaced when dependencies are built.
