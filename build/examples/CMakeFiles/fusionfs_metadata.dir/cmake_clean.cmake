file(REMOVE_RECURSE
  "CMakeFiles/fusionfs_metadata.dir/fusionfs_metadata.cpp.o"
  "CMakeFiles/fusionfs_metadata.dir/fusionfs_metadata.cpp.o.d"
  "fusionfs_metadata"
  "fusionfs_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusionfs_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
