file(REMOVE_RECURSE
  "libzht_serialize.a"
)
