# Empty dependencies file for zht_serialize.
# This may be replaced when dependencies are built.
