file(REMOVE_RECURSE
  "CMakeFiles/zht_serialize.dir/envelope.cc.o"
  "CMakeFiles/zht_serialize.dir/envelope.cc.o.d"
  "CMakeFiles/zht_serialize.dir/wire.cc.o"
  "CMakeFiles/zht_serialize.dir/wire.cc.o.d"
  "libzht_serialize.a"
  "libzht_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
