file(REMOVE_RECURSE
  "libzht_baselines.a"
)
