file(REMOVE_RECURSE
  "CMakeFiles/zht_baselines.dir/cassandra_lite.cc.o"
  "CMakeFiles/zht_baselines.dir/cassandra_lite.cc.o.d"
  "CMakeFiles/zht_baselines.dir/cmpi_lite.cc.o"
  "CMakeFiles/zht_baselines.dir/cmpi_lite.cc.o.d"
  "CMakeFiles/zht_baselines.dir/memcached_lite.cc.o"
  "CMakeFiles/zht_baselines.dir/memcached_lite.cc.o.d"
  "libzht_baselines.a"
  "libzht_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
