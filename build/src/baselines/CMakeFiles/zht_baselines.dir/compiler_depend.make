# Empty compiler generated dependencies file for zht_baselines.
# This may be replaced when dependencies are built.
