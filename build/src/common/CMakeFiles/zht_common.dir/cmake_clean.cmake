file(REMOVE_RECURSE
  "CMakeFiles/zht_common.dir/clock.cc.o"
  "CMakeFiles/zht_common.dir/clock.cc.o.d"
  "CMakeFiles/zht_common.dir/config.cc.o"
  "CMakeFiles/zht_common.dir/config.cc.o.d"
  "CMakeFiles/zht_common.dir/crc32.cc.o"
  "CMakeFiles/zht_common.dir/crc32.cc.o.d"
  "CMakeFiles/zht_common.dir/log.cc.o"
  "CMakeFiles/zht_common.dir/log.cc.o.d"
  "CMakeFiles/zht_common.dir/status.cc.o"
  "CMakeFiles/zht_common.dir/status.cc.o.d"
  "libzht_common.a"
  "libzht_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
