# Empty compiler generated dependencies file for zht_common.
# This may be replaced when dependencies are built.
