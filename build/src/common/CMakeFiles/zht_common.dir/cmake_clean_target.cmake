file(REMOVE_RECURSE
  "libzht_common.a"
)
