file(REMOVE_RECURSE
  "CMakeFiles/zht_matrix.dir/matrix_live.cc.o"
  "CMakeFiles/zht_matrix.dir/matrix_live.cc.o.d"
  "CMakeFiles/zht_matrix.dir/matrix_sim.cc.o"
  "CMakeFiles/zht_matrix.dir/matrix_sim.cc.o.d"
  "libzht_matrix.a"
  "libzht_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
