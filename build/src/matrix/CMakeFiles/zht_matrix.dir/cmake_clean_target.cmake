file(REMOVE_RECURSE
  "libzht_matrix.a"
)
