# Empty dependencies file for zht_matrix.
# This may be replaced when dependencies are built.
