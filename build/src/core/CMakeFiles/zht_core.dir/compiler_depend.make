# Empty compiler generated dependencies file for zht_core.
# This may be replaced when dependencies are built.
