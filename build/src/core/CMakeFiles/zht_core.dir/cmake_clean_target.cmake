file(REMOVE_RECURSE
  "libzht_core.a"
)
