file(REMOVE_RECURSE
  "CMakeFiles/zht_core.dir/indexer.cc.o"
  "CMakeFiles/zht_core.dir/indexer.cc.o.d"
  "CMakeFiles/zht_core.dir/local_cluster.cc.o"
  "CMakeFiles/zht_core.dir/local_cluster.cc.o.d"
  "CMakeFiles/zht_core.dir/manager.cc.o"
  "CMakeFiles/zht_core.dir/manager.cc.o.d"
  "CMakeFiles/zht_core.dir/zht_client.cc.o"
  "CMakeFiles/zht_core.dir/zht_client.cc.o.d"
  "CMakeFiles/zht_core.dir/zht_server.cc.o"
  "CMakeFiles/zht_core.dir/zht_server.cc.o.d"
  "libzht_core.a"
  "libzht_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
