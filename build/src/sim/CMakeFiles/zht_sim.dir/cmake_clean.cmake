file(REMOVE_RECURSE
  "CMakeFiles/zht_sim.dir/kvs_sim.cc.o"
  "CMakeFiles/zht_sim.dir/kvs_sim.cc.o.d"
  "CMakeFiles/zht_sim.dir/torus.cc.o"
  "CMakeFiles/zht_sim.dir/torus.cc.o.d"
  "libzht_sim.a"
  "libzht_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
