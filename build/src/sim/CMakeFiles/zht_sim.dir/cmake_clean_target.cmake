file(REMOVE_RECURSE
  "libzht_sim.a"
)
