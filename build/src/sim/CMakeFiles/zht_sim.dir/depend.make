# Empty dependencies file for zht_sim.
# This may be replaced when dependencies are built.
