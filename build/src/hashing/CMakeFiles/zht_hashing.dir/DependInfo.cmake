
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hashing/hash_functions.cc" "src/hashing/CMakeFiles/zht_hashing.dir/hash_functions.cc.o" "gcc" "src/hashing/CMakeFiles/zht_hashing.dir/hash_functions.cc.o.d"
  "/root/repo/src/hashing/hash_quality.cc" "src/hashing/CMakeFiles/zht_hashing.dir/hash_quality.cc.o" "gcc" "src/hashing/CMakeFiles/zht_hashing.dir/hash_quality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zht_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
