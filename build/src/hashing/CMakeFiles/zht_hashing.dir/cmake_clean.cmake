file(REMOVE_RECURSE
  "CMakeFiles/zht_hashing.dir/hash_functions.cc.o"
  "CMakeFiles/zht_hashing.dir/hash_functions.cc.o.d"
  "CMakeFiles/zht_hashing.dir/hash_quality.cc.o"
  "CMakeFiles/zht_hashing.dir/hash_quality.cc.o.d"
  "libzht_hashing.a"
  "libzht_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
