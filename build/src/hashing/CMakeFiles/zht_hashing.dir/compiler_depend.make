# Empty compiler generated dependencies file for zht_hashing.
# This may be replaced when dependencies are built.
