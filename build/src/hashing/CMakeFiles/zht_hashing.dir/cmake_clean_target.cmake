file(REMOVE_RECURSE
  "libzht_hashing.a"
)
