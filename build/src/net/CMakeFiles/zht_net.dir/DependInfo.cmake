
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/epoll_server.cc" "src/net/CMakeFiles/zht_net.dir/epoll_server.cc.o" "gcc" "src/net/CMakeFiles/zht_net.dir/epoll_server.cc.o.d"
  "/root/repo/src/net/loopback.cc" "src/net/CMakeFiles/zht_net.dir/loopback.cc.o" "gcc" "src/net/CMakeFiles/zht_net.dir/loopback.cc.o.d"
  "/root/repo/src/net/tcp_client.cc" "src/net/CMakeFiles/zht_net.dir/tcp_client.cc.o" "gcc" "src/net/CMakeFiles/zht_net.dir/tcp_client.cc.o.d"
  "/root/repo/src/net/threaded_server.cc" "src/net/CMakeFiles/zht_net.dir/threaded_server.cc.o" "gcc" "src/net/CMakeFiles/zht_net.dir/threaded_server.cc.o.d"
  "/root/repo/src/net/udp_client.cc" "src/net/CMakeFiles/zht_net.dir/udp_client.cc.o" "gcc" "src/net/CMakeFiles/zht_net.dir/udp_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/zht_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
