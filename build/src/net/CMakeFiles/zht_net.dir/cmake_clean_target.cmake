file(REMOVE_RECURSE
  "libzht_net.a"
)
