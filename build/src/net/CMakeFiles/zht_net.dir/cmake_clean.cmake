file(REMOVE_RECURSE
  "CMakeFiles/zht_net.dir/epoll_server.cc.o"
  "CMakeFiles/zht_net.dir/epoll_server.cc.o.d"
  "CMakeFiles/zht_net.dir/loopback.cc.o"
  "CMakeFiles/zht_net.dir/loopback.cc.o.d"
  "CMakeFiles/zht_net.dir/tcp_client.cc.o"
  "CMakeFiles/zht_net.dir/tcp_client.cc.o.d"
  "CMakeFiles/zht_net.dir/threaded_server.cc.o"
  "CMakeFiles/zht_net.dir/threaded_server.cc.o.d"
  "CMakeFiles/zht_net.dir/udp_client.cc.o"
  "CMakeFiles/zht_net.dir/udp_client.cc.o.d"
  "libzht_net.a"
  "libzht_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
