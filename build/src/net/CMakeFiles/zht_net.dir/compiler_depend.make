# Empty compiler generated dependencies file for zht_net.
# This may be replaced when dependencies are built.
