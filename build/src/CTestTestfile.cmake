# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("hashing")
subdirs("serialize")
subdirs("novoht")
subdirs("net")
subdirs("membership")
subdirs("core")
subdirs("sim")
subdirs("baselines")
subdirs("fusionfs")
subdirs("istore")
subdirs("matrix")
