file(REMOVE_RECURSE
  "libzht_membership.a"
)
