# Empty dependencies file for zht_membership.
# This may be replaced when dependencies are built.
