file(REMOVE_RECURSE
  "CMakeFiles/zht_membership.dir/membership_table.cc.o"
  "CMakeFiles/zht_membership.dir/membership_table.cc.o.d"
  "libzht_membership.a"
  "libzht_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
