file(REMOVE_RECURSE
  "libzht_fusionfs.a"
)
