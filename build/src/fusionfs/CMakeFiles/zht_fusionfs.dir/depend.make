# Empty dependencies file for zht_fusionfs.
# This may be replaced when dependencies are built.
