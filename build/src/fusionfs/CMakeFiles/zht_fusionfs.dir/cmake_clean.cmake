file(REMOVE_RECURSE
  "CMakeFiles/zht_fusionfs.dir/file_io.cc.o"
  "CMakeFiles/zht_fusionfs.dir/file_io.cc.o.d"
  "CMakeFiles/zht_fusionfs.dir/metadata.cc.o"
  "CMakeFiles/zht_fusionfs.dir/metadata.cc.o.d"
  "libzht_fusionfs.a"
  "libzht_fusionfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_fusionfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
