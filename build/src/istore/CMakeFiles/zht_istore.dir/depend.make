# Empty dependencies file for zht_istore.
# This may be replaced when dependencies are built.
