file(REMOVE_RECURSE
  "libzht_istore.a"
)
