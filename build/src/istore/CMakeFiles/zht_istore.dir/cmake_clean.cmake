file(REMOVE_RECURSE
  "CMakeFiles/zht_istore.dir/gf256.cc.o"
  "CMakeFiles/zht_istore.dir/gf256.cc.o.d"
  "CMakeFiles/zht_istore.dir/istore.cc.o"
  "CMakeFiles/zht_istore.dir/istore.cc.o.d"
  "CMakeFiles/zht_istore.dir/reed_solomon.cc.o"
  "CMakeFiles/zht_istore.dir/reed_solomon.cc.o.d"
  "libzht_istore.a"
  "libzht_istore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_istore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
