# Empty dependencies file for zht_novoht.
# This may be replaced when dependencies are built.
