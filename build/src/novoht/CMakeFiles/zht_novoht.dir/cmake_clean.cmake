file(REMOVE_RECURSE
  "CMakeFiles/zht_novoht.dir/btree_db.cc.o"
  "CMakeFiles/zht_novoht.dir/btree_db.cc.o.d"
  "CMakeFiles/zht_novoht.dir/hashdb_file.cc.o"
  "CMakeFiles/zht_novoht.dir/hashdb_file.cc.o.d"
  "CMakeFiles/zht_novoht.dir/novoht.cc.o"
  "CMakeFiles/zht_novoht.dir/novoht.cc.o.d"
  "libzht_novoht.a"
  "libzht_novoht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zht_novoht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
