file(REMOVE_RECURSE
  "libzht_novoht.a"
)
