// Validates BENCH_*.json telemetry reports against the schema documented
// in DESIGN.md §8 (schema_version 1). Used by the `bench_smoke` ctest
// label and tools/run_benches.sh; a malformed, empty, or schema-violating
// report exits non-zero with a diagnostic per file.
//
//   bench-schema-check FILE...            validate each file
//   bench-schema-check --index OUT FILE…  also write an aggregate index
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace {

using zht::json::Kind;
using zht::json::Value;

bool Fail(const std::string& file, const std::string& what) {
  std::fprintf(stderr, "%s: %s\n", file.c_str(), what.c_str());
  return false;
}

// Every histogram object must carry the summary fields; buckets are
// [lo, hi, count] triples with lo < hi.
bool ValidateHistogram(const std::string& file, const std::string& name,
                       const Value& h) {
  if (!h.is_object()) return Fail(file, "histogram " + name + " not an object");
  for (const char* key :
       {"count", "mean_ns", "min_ns", "max_ns", "p50_ns", "p90_ns", "p99_ns"}) {
    const Value* member = h.Get(key);
    if (member == nullptr || !member->is_number()) {
      return Fail(file, "histogram " + name + " missing numeric " + key);
    }
  }
  const Value* buckets = h.Get("buckets");
  if (buckets == nullptr || !buckets->is_array()) {
    return Fail(file, "histogram " + name + " missing buckets array");
  }
  for (const Value& bucket : buckets->array) {
    if (!bucket.is_array() || bucket.array.size() != 3 ||
        !bucket.array[0].is_number() || !bucket.array[1].is_number() ||
        !bucket.array[2].is_number() ||
        bucket.array[0].number >= bucket.array[1].number) {
      return Fail(file, "histogram " + name + " has a malformed bucket");
    }
  }
  return true;
}

bool ValidateReport(const std::string& file, const Value& doc) {
  if (!doc.is_object()) return Fail(file, "top level is not an object");

  const Value* version = doc.Get("schema_version");
  if (version == nullptr || !version->is_number() || version->number != 1) {
    return Fail(file, "schema_version missing or not 1");
  }
  const Value* name = doc.Get("name");
  if (name == nullptr || !name->is_string() || name->string.empty()) {
    return Fail(file, "name missing or empty");
  }
  const Value* params = doc.Get("params");
  if (params == nullptr || !params->is_object()) {
    return Fail(file, "params missing or not an object");
  }

  const Value* sections = doc.Get("sections");
  if (sections == nullptr || !sections->is_array() || sections->array.empty()) {
    return Fail(file, "sections missing or empty");
  }
  bool any_rows = false;
  for (const Value& section : sections->array) {
    if (!section.is_object()) return Fail(file, "section is not an object");
    const Value* id = section.Get("id");
    const Value* columns = section.Get("columns");
    const Value* rows = section.Get("rows");
    if (id == nullptr || !id->is_string() || id->string.empty()) {
      return Fail(file, "section id missing");
    }
    if (columns == nullptr || !columns->is_array() || columns->array.empty()) {
      return Fail(file, "section '" + id->string + "' has no columns");
    }
    if (rows == nullptr || !rows->is_array()) {
      return Fail(file, "section '" + id->string + "' has no rows array");
    }
    for (const Value& row : rows->array) {
      if (!row.is_array() || row.array.empty()) {
        return Fail(file, "section '" + id->string + "' has an empty row");
      }
      any_rows = true;
    }
  }
  if (!any_rows) return Fail(file, "report has no data rows");

  const Value* histograms = doc.Get("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    return Fail(file, "histograms missing or not an object");
  }
  for (const auto& [hist_name, hist] : histograms->object) {
    if (!ValidateHistogram(file, hist_name, hist)) return false;
  }
  const Value* metrics = doc.Get("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return Fail(file, "metrics missing or not an object");
  }
  for (const auto& [metric_name, metric] : metrics->object) {
    if (!metric.is_number()) {
      return Fail(file, "metric " + metric_name + " is not a number");
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string index_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--index") == 0 && i + 1 < argc) {
      index_path = argv[++i];
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: bench-schema-check [--index OUT.json] FILE...\n");
    return 2;
  }

  zht::json::Writer index;
  index.BeginObject();
  index.Key("reports");
  index.BeginArray();

  int failures = 0;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      Fail(file, "cannot open");
      ++failures;
      continue;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    const std::string text = contents.str();
    if (text.empty()) {
      Fail(file, "empty report");
      ++failures;
      continue;
    }
    auto doc = zht::json::Parse(text);
    if (!doc.ok()) {
      Fail(file, doc.status().ToString());
      ++failures;
      continue;
    }
    if (!ValidateReport(file, *doc)) {
      ++failures;
      continue;
    }
    std::printf("ok %s\n", file.c_str());
    index.BeginObject();
    index.Key("file");
    index.String(file);
    index.Key("name");
    index.String(doc->Get("name")->string);
    const zht::json::Value* smoke = doc->Get("smoke");
    index.Key("smoke");
    index.Bool(smoke != nullptr && smoke->kind == Kind::kBool &&
               smoke->boolean);
    index.Key("sections");
    index.Uint(doc->Get("sections")->array.size());
    index.Key("histograms");
    index.Uint(doc->Get("histograms")->object.size());
    index.Key("metrics");
    index.Uint(doc->Get("metrics")->object.size());
    index.EndObject();
  }
  index.EndArray();
  index.Key("failures");
  index.Int(failures);
  index.EndObject();

  if (!index_path.empty()) {
    std::FILE* f = std::fopen(index_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write index %s\n", index_path.c_str());
      return 2;
    }
    std::fwrite(index.out().data(), 1, index.out().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return failures == 0 ? 0 : 1;
}
