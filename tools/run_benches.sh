#!/usr/bin/env bash
# Runs every fig/ablation bench from a build tree, collects the BENCH_*.json
# telemetry each one emits, validates every report against the schema, and
# aggregates them into BENCH_INDEX.json.
#
#   tools/run_benches.sh BUILD_DIR [OUT_DIR]
#
# Full-size sweeps by default; set ZHT_BENCH_SMOKE=1 for the seconds-sized
# variants the `ctest -L bench_smoke` label runs.
set -euo pipefail

build="${1:?usage: run_benches.sh BUILD_DIR [OUT_DIR]}"
out="${2:-bench_reports}"
mkdir -p "$out"

status=0
for bench in "$build"/bench/bench_fig* "$build"/bench/bench_ablation* \
             "$build"/bench/bench_batching "$build"/bench/bench_durability \
             "$build"/bench/bench_failover "$build"/bench/bench_table1_features \
             "$build"/bench/bench_traffic "$build"/bench/bench_churn; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "== $name"
  if ! ZHT_BENCH_DIR="$out" "$bench" > "$out/$name.txt" 2>&1; then
    echo "FAILED: $name (output in $out/$name.txt)"
    status=1
  fi
done

"$build"/tools/bench-schema-check --index "$out/BENCH_INDEX.json" \
    "$out"/BENCH_*.json || status=1

echo "reports and index in $out/"
exit $status
