// zht-cli: command-line client for a running ZHT deployment.
//
//   ./tools/zht-cli --neighbors neighbors.conf insert KEY VALUE
//   ./tools/zht-cli --neighbors neighbors.conf lookup KEY
//   ./tools/zht-cli --neighbors neighbors.conf remove KEY
//   ./tools/zht-cli --neighbors neighbors.conf append KEY VALUE
//   ./tools/zht-cli --neighbors neighbors.conf ping INSTANCE
//   ./tools/zht-cli --neighbors neighbors.conf bench N     # N random ops
//   ./tools/zht-cli --neighbors neighbors.conf mput K V [K V ...]  # batch
//   ./tools/zht-cli --neighbors neighbors.conf mget K [K ...]      # batch
//
// Optional: --replicas R (must match the servers), --partitions P,
// --placement contiguous|memento|rendezvous (must match the servers),
// --udp (use the ack-based UDP transport instead of cached TCP).
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/clock.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/zht_client.h"
#include "hashing/placement_policy.h"
#include "serialize/metrics_codec.h"
#include "net/tcp_client.h"
#include "net/udp_client.h"

namespace {

zht::Result<std::vector<zht::NodeAddress>> LoadNeighbors(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return zht::Status(zht::StatusCode::kNotFound,
                       "cannot open neighbor file: " + path);
  }
  std::vector<zht::NodeAddress> neighbors;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    std::size_t end = line.find_last_not_of(" \t\r");
    auto address = zht::NodeAddress::Parse(
        line.substr(begin, end - begin + 1));
    if (!address.ok()) return address.status();
    neighbors.push_back(*address);
  }
  return neighbors;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --neighbors FILE [--replicas R] [--partitions P] "
               "[--placement KIND] [--udp] COMMAND ...\n"
               "commands: insert K V | lookup K | remove K | append K V | "
               "mput K V [K V ...] | mget K [K ...] | "
               "ping INSTANCE | stats INSTANCE | bench N\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zht;

  std::string neighbor_path;
  std::string placement = "contiguous";
  int replicas = 0;
  std::uint32_t partitions = 0;
  bool use_udp = false;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (!std::strcmp(argv[arg], "--neighbors") && arg + 1 < argc) {
      neighbor_path = argv[++arg];
    } else if (!std::strcmp(argv[arg], "--replicas") && arg + 1 < argc) {
      replicas = static_cast<int>(std::strtol(argv[++arg], nullptr, 10));
    } else if (!std::strcmp(argv[arg], "--partitions") && arg + 1 < argc) {
      partitions = static_cast<std::uint32_t>(
          std::strtoul(argv[++arg], nullptr, 10));
    } else if (!std::strcmp(argv[arg], "--placement") && arg + 1 < argc) {
      placement = argv[++arg];
    } else if (!std::strcmp(argv[arg], "--udp")) {
      use_udp = true;
    } else {
      return Usage(argv[0]);
    }
    ++arg;
  }
  if (neighbor_path.empty() || arg >= argc) return Usage(argv[0]);

  auto neighbors = LoadNeighbors(neighbor_path);
  if (!neighbors.ok() || neighbors->empty()) {
    std::fprintf(stderr, "neighbors: %s\n",
                 neighbors.ok() ? "empty file"
                                : neighbors.status().ToString().c_str());
    return 1;
  }
  if (partitions == 0) {
    partitions = static_cast<std::uint32_t>(neighbors->size()) * 1024;
  }

  // The bootstrap guess must use the deployment's placement: with a
  // matching epoch but different ownership, redirects carry empty deltas
  // and misrouted ops never converge.
  auto placement_kind = ParsePlacementKind(placement);
  if (!placement_kind.ok()) {
    std::fprintf(stderr, "%s\n", placement_kind.status().ToString().c_str());
    return 2;
  }
  MembershipTable table = MembershipTable::CreateUniform(
      partitions, *neighbors, 1, HashKind::kFnv1a, *placement_kind);
  std::unique_ptr<ClientTransport> transport;
  if (use_udp) {
    transport = std::make_unique<UdpClient>();
  } else {
    transport = std::make_unique<TcpClient>();
  }
  ZhtClientOptions options;
  options.cluster.num_replicas = replicas;
  options.cluster.op_timeout = 2 * kNanosPerSec;
  Status cluster_valid = options.cluster.Validate();
  if (!cluster_valid.ok()) {
    std::fprintf(stderr, "bad cluster options: %s\n",
                 cluster_valid.ToString().c_str());
    return 2;
  }
  ZhtClient client(std::move(table), options, transport.get());

  std::string command = argv[arg++];
  auto need = [&](int n) {
    if (argc - arg < n) {
      Usage(argv[0]);
      std::exit(2);
    }
  };

  if (command == "insert") {
    need(2);
    Status status = client.Insert(argv[arg], argv[arg + 1]);
    std::printf("%s\n", status.ToString().c_str());
    return status.ok() ? 0 : 1;
  }
  if (command == "lookup") {
    need(1);
    auto value = client.Lookup(argv[arg]);
    if (!value.ok()) {
      std::printf("%s\n", value.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", value->c_str());
    return 0;
  }
  if (command == "remove") {
    need(1);
    Status status = client.Remove(argv[arg]);
    std::printf("%s\n", status.ToString().c_str());
    return status.ok() ? 0 : 1;
  }
  if (command == "append") {
    need(2);
    Status status = client.Append(argv[arg], argv[arg + 1]);
    std::printf("%s\n", status.ToString().c_str());
    return status.ok() ? 0 : 1;
  }
  if (command == "mput") {
    need(2);
    std::vector<KeyValue> pairs;
    for (; arg + 1 < argc; arg += 2) {
      pairs.push_back(KeyValue{argv[arg], argv[arg + 1]});
    }
    auto statuses = client.MultiInsert(pairs);
    int failures = 0;
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      std::printf("%s %s\n", pairs[i].key.c_str(),
                  statuses[i].ToString().c_str());
      if (!statuses[i].ok()) ++failures;
    }
    return failures == 0 ? 0 : 1;
  }
  if (command == "mget") {
    need(1);
    std::vector<std::string> keys;
    for (; arg < argc; ++arg) keys.emplace_back(argv[arg]);
    auto values = client.MultiLookup(keys);
    int failures = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i].ok()) {
        std::printf("%s %s\n", keys[i].c_str(), values[i]->c_str());
      } else {
        std::printf("%s %s\n", keys[i].c_str(),
                    values[i].status().ToString().c_str());
        ++failures;
      }
    }
    return failures == 0 ? 0 : 1;
  }
  if (command == "ping") {
    need(1);
    Status status = client.Ping(static_cast<InstanceId>(
        std::strtoul(argv[arg], nullptr, 10)));
    std::printf("%s\n", status.ToString().c_str());
    return status.ok() ? 0 : 1;
  }
  if (command == "stats") {
    need(1);
    InstanceId instance = static_cast<InstanceId>(
        std::strtoul(argv[arg], nullptr, 10));
    if (instance >= client.table().instance_count()) {
      std::fprintf(stderr, "no such instance\n");
      return 1;
    }
    Request request;
    request.op = OpCode::kStats;
    request.seq = 1;
    auto result = transport->Call(client.table().Instance(instance).address,
                                  request, 2 * kNanosPerSec);
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      return 1;
    }
    // STATS carries a versioned structured snapshot; render counters and
    // gauges as `name = value` lines and histograms as one-line summaries.
    auto snapshot = DecodeMetricsSnapshot(result->value);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "undecodable stats payload: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", RenderMetricsSnapshot(*snapshot).c_str());
    return 0;
  }
  if (command == "bench") {
    need(1);
    long n = std::strtol(argv[arg], nullptr, 10);
    Rng rng(static_cast<std::uint64_t>(n) * 7919);
    LatencyStats stats;
    long failures = 0;
    for (long i = 0; i < n; ++i) {
      std::string key = rng.AsciiString(15);
      std::string value = rng.AsciiString(132);
      Stopwatch op(SystemClock::Instance());
      if (!client.Insert(key, value).ok() || !client.Lookup(key).ok() ||
          !client.Remove(key).ok()) {
        ++failures;
      }
      stats.Record(op.Elapsed());
    }
    std::printf("%ld op-triples, mean %.1f us, p99 %.1f us, %ld failures\n",
                n, stats.MeanMicros() / 3.0,
                ToMicros(stats.Percentile(99)) / 3.0, failures);
    return failures == 0 ? 0 : 1;
  }
  return Usage(argv[0]);
}
