// zht-server: standalone ZHT instance daemon, configured the way the
// original ZHT deployment was — a key=value config file plus a neighbor
// file listing every instance (one "host:port" per line, §III.C static
// bootstrap).
//
//   ./tools/zht-server --config zht.cfg --neighbors neighbors.conf --self 0
//
// Config keys (all optional):
//   port            = 50000       # overrides the neighbor entry's port
//   replicas        = 1           # replication level
//   partitions      = 0           # 0 → 1024 per instance
//   data_dir        = /tmp/zht    # empty → in-memory stores
//   instances_per_node = 1
//   num_reactors    = 1           # event-loop threads (cores to drive)
//   hash            = fnv | jenkins
//   placement_policy = contiguous | memento | rendezvous  # partition
//                                 # placement (must match cluster-wide)
//   log_level       = info | debug | warn | error
//   durability      = none | group_commit | every_op   # acked-write safety
//   max_commit_latency_us = 0     # group-commit window (microseconds)
//   hot_cache_entries = 0         # per-shard hot-key read cache (0 = off)
//   shed_queue_budget = 0         # admission control: mailbox-depth budget
//                                 # past which data ops shed (0 = off)
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/config.h"
#include "common/log.h"
#include "core/local_cluster.h"
#include "core/zht_server.h"
#include "net/epoll_server.h"
#include "net/tcp_client.h"
#include "novoht/novoht.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

zht::Result<std::vector<zht::NodeAddress>> LoadNeighbors(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return zht::Status(zht::StatusCode::kNotFound,
                       "cannot open neighbor file: " + path);
  }
  std::vector<zht::NodeAddress> neighbors;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.back()))) {
      line.pop_back();
    }
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    line = line.substr(start);
    if (line.empty()) continue;
    auto address = zht::NodeAddress::Parse(line);
    if (!address.ok()) return address.status();
    neighbors.push_back(*address);
  }
  if (neighbors.empty()) {
    return zht::Status(zht::StatusCode::kInvalidArgument,
                       "neighbor file lists no instances");
  }
  return neighbors;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zht;

  std::string config_path, neighbor_path;
  long self = -1;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--config") && i + 1 < argc) {
      config_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--neighbors") && i + 1 < argc) {
      neighbor_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--self") && i + 1 < argc) {
      self = std::strtol(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s --neighbors FILE --self INDEX [--config FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (neighbor_path.empty() || self < 0) {
    std::fprintf(stderr,
                 "usage: %s --neighbors FILE --self INDEX [--config FILE]\n",
                 argv[0]);
    return 2;
  }

  Config config;
  if (!config_path.empty()) {
    auto loaded = Config::FromFile(config_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "config: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    config = *loaded;
  }
  std::string level = config.GetString("log_level", "info");
  Logger::Instance().SetLevel(level == "debug"  ? LogLevel::kDebug
                              : level == "warn" ? LogLevel::kWarn
                              : level == "error" ? LogLevel::kError
                                                 : LogLevel::kInfo);

  auto neighbors = LoadNeighbors(neighbor_path);
  if (!neighbors.ok()) {
    std::fprintf(stderr, "neighbors: %s\n",
                 neighbors.status().ToString().c_str());
    return 1;
  }
  if (static_cast<std::size_t>(self) >= neighbors->size()) {
    std::fprintf(stderr, "--self %ld out of range (%zu instances)\n", self,
                 neighbors->size());
    return 1;
  }

  std::uint32_t partitions = static_cast<std::uint32_t>(
      config.GetInt("partitions", 0));
  if (partitions == 0) {
    partitions = static_cast<std::uint32_t>(neighbors->size()) * 1024;
  }
  HashKind hash = config.GetString("hash", "fnv") == "jenkins"
                      ? HashKind::kJenkins
                      : HashKind::kFnv1a;
  const std::string placement =
      config.GetString("placement_policy", "contiguous");
  auto placement_kind = ParsePlacementKind(placement);
  if (!placement_kind.ok()) {
    std::fprintf(stderr, "%s\n", placement_kind.status().ToString().c_str());
    return 1;
  }
  MembershipTable table = MembershipTable::CreateUniform(
      partitions, *neighbors,
      static_cast<std::uint32_t>(config.GetInt("instances_per_node", 1)),
      hash, *placement_kind);

  ZhtServerOptions server_options;
  server_options.self = static_cast<InstanceId>(self);
  server_options.cluster.placement_policy = placement;
  server_options.cluster.num_replicas =
      static_cast<int>(config.GetInt("replicas", 0));
  server_options.cluster.peer_timeout =
      config.GetInt("peer_timeout_ms", 500) * kNanosPerMilli;
  const std::string durability = config.GetString("durability", "none");
  if (durability == "group_commit") {
    server_options.cluster.durability = DurabilityMode::kGroupCommit;
  } else if (durability == "every_op") {
    server_options.cluster.durability = DurabilityMode::kEveryOp;
  } else if (durability != "none") {
    std::fprintf(stderr, "bad durability mode: %s\n", durability.c_str());
    return 1;
  }
  server_options.cluster.max_commit_latency =
      config.GetInt("max_commit_latency_us", 0) * kNanosPerMicro;
  server_options.cluster.hot_cache_entries =
      static_cast<std::size_t>(config.GetInt("hot_cache_entries", 0));
  server_options.cluster.shed_queue_budget =
      static_cast<std::size_t>(config.GetInt("shed_queue_budget", 0));
  Status cluster_valid = server_options.cluster.Validate();
  if (!cluster_valid.ok()) {
    std::fprintf(stderr, "bad cluster options: %s\n",
                 cluster_valid.ToString().c_str());
    return 1;
  }
  std::string data_dir = config.GetString("data_dir", "");
  if (!data_dir.empty()) {
    // Persistent stores with the configured durability; the server acks a
    // mutation only after the store reports it durable.
    server_options.store_factory =
        MakeNoVoHTStoreFactory(data_dir, server_options.cluster);
  }

  const int num_reactors =
      static_cast<int>(config.GetInt("num_reactors", 1));
  // One shard (disjoint partition set + mailbox) per reactor: each event
  // loop owns its partitions end to end.
  server_options.num_shards =
      static_cast<std::size_t>(num_reactors < 1 ? 1 : num_reactors);

  TcpClient peer_transport;
  ZhtServer server(std::move(table), server_options, &peer_transport);

  const NodeAddress& me = (*neighbors)[static_cast<std::size_t>(self)];
  EpollServerOptions net_options;
  net_options.host = me.host;
  net_options.port = static_cast<std::uint16_t>(
      config.GetInt("port", me.port));
  net_options.num_reactors = num_reactors;
  auto net = EpollServer::Create(net_options, server.AsyncHandler());
  if (!net.ok()) {
    std::fprintf(stderr, "listen: %s\n", net.status().ToString().c_str());
    return 1;
  }
  LocalCluster::WireReactors(server, **net);
  std::printf("zht-server: instance %ld of %zu serving on %s "
              "(%u partitions, %d replicas, %d reactors, %s)\n",
              self, neighbors->size(), (*net)->address().ToString().c_str(),
              partitions, server_options.cluster.num_replicas,
              (*net)->num_reactors(),
              data_dir.empty() ? "in-memory" : data_dir.c_str());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("zht-server: shutting down (%llu requests served)\n",
              static_cast<unsigned long long>((*net)->requests_served()));
  (*net)->Stop();
  return 0;
}
